#include "algo/local_sgd.hpp"

#include "core/check.hpp"
#include "tensor/vecops.hpp"

namespace hm::algo {

void run_local_sgd(const nn::Model& model, const data::Dataset& shard,
                   const LocalSgdConfig& config, nn::VecView w,
                   nn::VecView checkpoint, rng::Xoshiro256& gen,
                   ClientScratch& scratch) {
  HM_CHECK(config.steps >= 0 && config.batch_size > 0 && config.eta > 0);
  HM_CHECK(static_cast<index_t>(w.size()) == model.num_params());
  const bool capture =
      config.checkpoint_step >= 1 && config.checkpoint_step <= config.steps;
  if (capture) {
    HM_CHECK(static_cast<index_t>(checkpoint.size()) == model.num_params());
  }
  scratch.ensure(model);
  if (config.prox_mu > 0) {
    scratch.prox_center.assign(w.begin(), w.end());
  }

  std::vector<index_t> batch(static_cast<std::size_t>(config.batch_size));
  for (index_t step = 0; step < config.steps; ++step) {
    for (auto& idx : batch) {
      idx = static_cast<index_t>(gen.uniform_index(
          static_cast<std::uint64_t>(shard.size())));
    }
    model.loss_and_grad(w, shard, batch, scratch.grad, *scratch.ws);
    if (config.prox_mu > 0) {
      for (std::size_t i = 0; i < scratch.grad.size(); ++i) {
        scratch.grad[i] += config.prox_mu * (w[i] - scratch.prox_center[i]);
      }
    }
    // Fused decayed step: w = (1 - eta*wd)*w - eta*g in one pass
    // (bit-identical to the scale-then-axpy pair; see vecops.hpp).
    const scalar_t decay =
        config.weight_decay > 0 ? 1 - config.eta * config.weight_decay
                                : scalar_t{1};
    tensor::axpby(-config.eta, scratch.grad, decay, w);
    tensor::project_l2_ball(w, config.w_radius);
    if (capture && step + 1 == config.checkpoint_step) {
      tensor::copy(w, checkpoint);
    }
  }
}

void run_local_sgd_jobs(const nn::Model& model, const LocalSgdConfig& config,
                        std::span<const LocalSgdJob> jobs,
                        std::vector<ClientScratch>& scratch,
                        BatchEngineState& batch_state, bool batched,
                        const sim::ClusterSim& cluster) {
  if (jobs.empty()) return;
  if (!batched) {
    cluster.run_devices(static_cast<index_t>(jobs.size()), [&](index_t j) {
      const LocalSgdJob& job = jobs[static_cast<std::size_t>(j)];
      run_local_sgd(model, *job.shard, config, job.w, job.checkpoint,
                    *job.gen,
                    scratch[static_cast<std::size_t>(job.scratch_id)]);
    });
    return;
  }

  // Batched lockstep path. Mirrors run_local_sgd line for line, with the
  // per-step gradient evaluations of all jobs fused into one
  // loss_and_grad_batch call. Each job's RNG stream sees exactly the
  // oracle's draw sequence (its own batches, in step order), every
  // floating-point op per job is unchanged, and each gen ends in the
  // oracle's post-run state.
  HM_CHECK(config.steps >= 0 && config.batch_size > 0 && config.eta > 0);
  const bool capture =
      config.checkpoint_step >= 1 && config.checkpoint_step <= config.steps;
  for (const LocalSgdJob& job : jobs) {
    HM_CHECK(static_cast<index_t>(job.w.size()) == model.num_params());
    if (capture) {
      HM_CHECK(static_cast<index_t>(job.checkpoint.size()) ==
               model.num_params());
    }
    auto& sc = scratch[static_cast<std::size_t>(job.scratch_id)];
    sc.ensure(model);
    if (config.prox_mu > 0) {
      sc.prox_center.assign(job.w.begin(), job.w.end());
    }
  }
  if (!batch_state.ws) batch_state.ws = model.make_batch_workspace();
  const auto num_jobs = jobs.size();
  const auto bs = static_cast<std::size_t>(config.batch_size);
  batch_state.batches.resize(num_jobs * bs);
  batch_state.refs.resize(num_jobs);

  for (index_t step = 0; step < config.steps; ++step) {
    for (std::size_t j = 0; j < num_jobs; ++j) {
      const LocalSgdJob& job = jobs[j];
      for (std::size_t b = 0; b < bs; ++b) {
        batch_state.batches[j * bs + b] =
            static_cast<index_t>(job.gen->uniform_index(
                static_cast<std::uint64_t>(job.shard->size())));
      }
      batch_state.refs[j] = nn::BatchClientRef{
          job.w, job.shard,
          std::span<const index_t>(batch_state.batches.data() + j * bs, bs),
          scratch[static_cast<std::size_t>(job.scratch_id)].grad};
    }
    model.loss_and_grad_batch(batch_state.refs, {}, *batch_state.ws);
    cluster.run_devices(static_cast<index_t>(num_jobs), [&](index_t ji) {
      const LocalSgdJob& job = jobs[static_cast<std::size_t>(ji)];
      auto& sc = scratch[static_cast<std::size_t>(job.scratch_id)];
      if (config.prox_mu > 0) {
        for (std::size_t i = 0; i < sc.grad.size(); ++i) {
          sc.grad[i] += config.prox_mu * (job.w[i] - sc.prox_center[i]);
        }
      }
      const scalar_t decay =
          config.weight_decay > 0 ? 1 - config.eta * config.weight_decay
                                  : scalar_t{1};
      tensor::axpby(-config.eta, sc.grad, decay, job.w);
      tensor::project_l2_ball(job.w, config.w_radius);
      if (capture && step + 1 == config.checkpoint_step) {
        tensor::copy(job.w, job.checkpoint);
      }
    });
  }
}

}  // namespace hm::algo
