#include "algo/fedavg.hpp"

#include "algo/local_sgd.hpp"
#include "sim/quantize.hpp"
#include "algo/trainer_common.hpp"
#include "core/check.hpp"
#include "obs/obs.hpp"
#include "parallel/parallel_for.hpp"
#include "tensor/vecops.hpp"

namespace hm::algo {

TrainResult train_fedavg(const nn::Model& model,
                         const data::FederatedDataset& fed,
                         const TrainOptions& opts,
                         parallel::ThreadPool& pool) {
  fed.validate();
  HM_CHECK(opts.rounds > 0 && opts.tau1 > 0);
  const index_t d = model.num_params();
  const index_t num_clients = fed.num_clients();
  const index_t m =
      opts.sampled_clients > 0 ? opts.sampled_clients : num_clients;
  HM_CHECK(m <= num_clients);

  rng::Xoshiro256 root(opts.seed);
  const sim::FaultPlan plan(opts.fault);

  TrainResult result;
  result.w.assign(static_cast<std::size_t>(d), 0);
  {
    rng::Xoshiro256 init_gen = root.split(detail::kTagInit);
    model.init_params(result.w, init_gen);
  }
  result.p = detail::uniform_weights(fed.num_edges());
  result.w_avg = result.w;
  result.p_avg = result.p;

  std::vector<std::vector<scalar_t>> client_w(
      static_cast<std::size_t>(num_clients),
      std::vector<scalar_t>(static_cast<std::size_t>(d)));
  std::vector<ClientScratch> scratch(static_cast<std::size_t>(num_clients));
  const sim::ClusterSim cluster(pool);
  BatchEngineState bstate;
  detail::StaleStore stale;
  if (plan.enabled()) stale.init(num_clients);
  detail::PoisonStore poison;
  const detail::AggregateSpec agg{opts.aggregate, opts.trim_frac};

  detail::RunState rs;
  rs.algo_id = detail::kAlgoFedAvg;
  rs.seed = opts.seed;
  rs.root = &root;
  rs.w = &result.w;
  rs.w_avg = &result.w_avg;
  rs.comm = &result.comm;
  rs.stale = &stale;
  rs.history = &result.history;
  const index_t k0 = detail::resume_round(opts.resume_from, rs);

  if (k0 == 0) {
    detail::maybe_record(model, fed, pool, 0, opts.rounds, opts.eval_every,
                         result.w, result.comm, result.history);
  }

  for (index_t k = k0; k < opts.rounds; ++k) {
    HM_OBS_SPAN("fedavg.round", "algo", k, 0);
    HM_OBS_INC("algo.fedavg.rounds");
    rng::Xoshiro256 round_gen = root.split(static_cast<std::uint64_t>(k) + 1);
    rng::Xoshiro256 sample_gen = round_gen.split(detail::kTagSampleEdges);
    const auto clients =
        rng::sample_without_replacement(num_clients, m, sample_gen);
    result.comm.edge_cloud_models_down +=
        static_cast<std::uint64_t>(clients.size());

    LocalSgdConfig cfg;
    cfg.steps = opts.tau1;
    cfg.batch_size = opts.batch_size;
    cfg.eta = opts.eta_w;
    cfg.w_radius = opts.w_radius;
    cfg.weight_decay = opts.weight_decay;
    cfg.prox_mu = opts.prox_mu;
    std::vector<LocalSgdJob> jobs;
    std::vector<rng::Xoshiro256> gens;
    jobs.reserve(clients.size());
    gens.reserve(clients.size());
    for (const index_t n : clients) {
      auto& w_local = client_w[static_cast<std::size_t>(n)];
      tensor::copy(result.w, w_local);
      gens.push_back(round_gen.split(detail::kTagLocal)
                         .split(static_cast<std::uint64_t>(n)));
      const data::Dataset* shard = &fed.client_shard_at(k, n);
      if (plan.client_poisoned(k, n)) shard = &poison.get(*shard, n);
      jobs.push_back({shard, w_local, {}, &gens.back(), n});
    }
    run_local_sgd_jobs(model, cfg, jobs, scratch, bstate, opts.batched,
                       cluster);
    if (opts.quantize_bits > 0) {
      for (std::size_t j = 0; j < jobs.size(); ++j) {
        rng::Xoshiro256 qgen = gens[j].split(detail::kTagQuant);
        sim::quantize_payload(
            client_w[static_cast<std::size_t>(clients[j])],
            opts.quantize_bits, qgen);
      }
    }
    if (plan.payload_attack()) {
      // Byzantine uploads: compromised clients corrupt what they send;
      // result.w still holds the round's broadcast model (the sign-flip
      // reflection reference).
      for (const index_t n : clients) {
        if (!plan.client_attacker(k, n)) continue;
        plan.corrupt_payload(k, n, result.w.data(),
                             client_w[static_cast<std::size_t>(n)].data(), d);
      }
    }

    if (!plan.enabled()) {
      detail::robust_uniform_average(client_w, clients, agg, result.w);
      tensor::project_l2_ball(result.w, opts.w_radius);
    } else {
      // Decide which sampled clients report over the wide-area link:
      // offline (crashed or churned-away) clients never send, dropped
      // clients' reports are lost, link loss burns the retry budget,
      // stragglers arrive late.
      std::vector<char> delivered(clients.size(), 0);
      for (std::size_t j = 0; j < clients.size(); ++j) {
        const index_t n = clients[j];
        if (plan.client_offline(k, n)) continue;
        if (plan.client_dropped(k, n)) {
          result.comm.edge_cloud_fault.note_lost_report();
          continue;
        }
        if (!plan.deliver(k, sim::fault_msg(sim::kMsgModelUp, n),
                          result.comm.edge_cloud_fault)) {
          continue;
        }
        result.comm.edge_cloud_fault.note_straggle(plan.straggler_mult(k, n));
        delivered[j] = 1;
      }
      if (detail::degraded_uniform_average(client_w, clients, delivered,
                                           opts.on_fault, opts.stale_decay,
                                           k, stale, result.w, result.w,
                                           agg)) {
        tensor::project_l2_ball(result.w, opts.w_radius);
      }
    }
    result.comm.edge_cloud_rounds += 1;
    result.comm.edge_cloud_models_up +=
        static_cast<std::uint64_t>(clients.size());
    result.comm.edge_cloud_bytes +=
        static_cast<std::uint64_t>(clients.size()) *
        (sim::payload_bytes(d, 0) +
         sim::payload_bytes(d, opts.quantize_bits));

    detail::update_running_average(result.w_avg, result.w, k);
    detail::maybe_record(model, fed, pool, k + 1, opts.rounds,
                         opts.eval_every, result.w, result.comm,
                         result.history);
    detail::snapshot_round_end(opts.snapshot, k, rs);
  }
  return result;
}

TrainResult train_fedavg(const nn::Model& model,
                         const data::FederatedDataset& fed,
                         const TrainOptions& opts) {
  return train_fedavg(model, fed, opts, parallel::ThreadPool::global());
}

}  // namespace hm::algo
