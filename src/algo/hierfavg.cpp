#include "algo/hierfavg.hpp"

#include "algo/local_sgd.hpp"
#include "sim/quantize.hpp"
#include "algo/trainer_common.hpp"
#include "core/check.hpp"
#include "obs/obs.hpp"
#include "parallel/parallel_for.hpp"
#include "tensor/vecops.hpp"

namespace hm::algo {

TrainResult train_hierfavg(const nn::Model& model,
                           const data::FederatedDataset& fed,
                           const sim::HierTopology& topo,
                           const TrainOptions& opts,
                           parallel::ThreadPool& pool) {
  fed.validate();
  HM_CHECK(fed.num_edges() == topo.num_edges());
  HM_CHECK(fed.clients_per_edge == topo.clients_per_edge());
  HM_CHECK(opts.rounds > 0 && opts.tau1 > 0 && opts.tau2 > 0);
  const index_t d = model.num_params();
  const index_t num_edges = topo.num_edges();
  const index_t n0 = topo.clients_per_edge();
  const index_t m_e = opts.sampled_edges > 0 ? opts.sampled_edges : num_edges;
  HM_CHECK(m_e <= num_edges);

  rng::Xoshiro256 root(opts.seed);
  const sim::FaultPlan plan(opts.fault);

  TrainResult result;
  result.w.assign(static_cast<std::size_t>(d), 0);
  {
    rng::Xoshiro256 init_gen = root.split(detail::kTagInit);
    model.init_params(result.w, init_gen);
  }
  result.p = detail::uniform_weights(num_edges);  // fixed uniform weights
  result.w_avg = result.w;
  result.p_avg = result.p;

  std::vector<std::vector<scalar_t>> client_w(
      static_cast<std::size_t>(topo.num_clients()),
      std::vector<scalar_t>(static_cast<std::size_t>(d)));
  std::vector<std::vector<scalar_t>> edge_w(
      static_cast<std::size_t>(num_edges),
      std::vector<scalar_t>(static_cast<std::size_t>(d)));
  std::vector<ClientScratch> scratch(
      static_cast<std::size_t>(topo.num_clients()));
  const sim::ClusterSim cluster(pool);
  BatchEngineState bstate;
  detail::StaleStore stale;
  if (plan.enabled()) stale.init(num_edges);
  detail::PoisonStore poison;
  const detail::AggregateSpec agg{opts.aggregate, opts.trim_frac};

  detail::RunState rs;
  rs.algo_id = detail::kAlgoHierFavg;
  rs.seed = opts.seed;
  rs.root = &root;
  rs.w = &result.w;
  rs.w_avg = &result.w_avg;
  rs.comm = &result.comm;
  rs.stale = &stale;
  rs.history = &result.history;
  const index_t k0 = detail::resume_round(opts.resume_from, rs);

  if (k0 == 0) {
    detail::maybe_record(model, fed, pool, 0, opts.rounds, opts.eval_every,
                         result.w, result.comm, result.history);
  }

  for (index_t k = k0; k < opts.rounds; ++k) {
    HM_OBS_SPAN("hierfavg.round", "algo", k, 0);
    HM_OBS_INC("algo.hierfavg.rounds");
    rng::Xoshiro256 round_gen = root.split(static_cast<std::uint64_t>(k) + 1);
    rng::Xoshiro256 sample_gen = round_gen.split(detail::kTagSampleEdges);
    const auto edges =
        rng::sample_without_replacement(num_edges, m_e, sample_gen);
    const auto participating = static_cast<std::uint64_t>(edges.size());
    result.comm.edge_cloud_models_down += participating;

    for (const index_t e : edges) {
      tensor::copy(result.w, edge_w[static_cast<std::size_t>(e)]);
    }

    for (index_t t2 = 0; t2 < opts.tau2; ++t2) {
      LocalSgdConfig cfg;
      cfg.steps = opts.tau1;
      cfg.batch_size = opts.batch_size;
      cfg.eta = opts.eta_w;
      cfg.w_radius = opts.w_radius;
      cfg.weight_decay = opts.weight_decay;
      cfg.prox_mu = opts.prox_mu;
      std::vector<LocalSgdJob> jobs;
      std::vector<rng::Xoshiro256> gens;
      const std::size_t max_jobs = edges.size() * static_cast<std::size_t>(n0);
      jobs.reserve(max_jobs);
      gens.reserve(max_jobs);
      for (const index_t e : edges) {
        for (index_t i = 0; i < n0; ++i) {
          const index_t client = topo.client_id(e, i);
          // Offline hardware (crashed or churned away) computes nothing
          // this round. (Dropped clients still compute — only their
          // report is lost.)
          if (plan.edge_crashed(k, e) || plan.client_offline(k, client)) {
            continue;
          }
          auto& w_local = client_w[static_cast<std::size_t>(client)];
          tensor::copy(edge_w[static_cast<std::size_t>(e)], w_local);
          gens.push_back(round_gen.split(detail::kTagLocal)
                             .split(static_cast<std::uint64_t>(e))
                             .split(static_cast<std::uint64_t>(t2))
                             .split(static_cast<std::uint64_t>(i)));
          const data::Dataset* shard = &fed.shard_at(k, e, i);
          if (plan.client_poisoned(k, client)) {
            shard = &poison.get(*shard, client);
          }
          jobs.push_back({shard, w_local, {}, &gens.back(), client});
        }
      }
      run_local_sgd_jobs(model, cfg, jobs, scratch, bstate, opts.batched,
                         cluster);
      if (opts.quantize_bits > 0) {
        for (std::size_t j = 0; j < jobs.size(); ++j) {
          rng::Xoshiro256 qgen = gens[j].split(detail::kTagQuant);
          sim::quantize_payload(
              client_w[static_cast<std::size_t>(jobs[j].scratch_id)],
              opts.quantize_bits, qgen);
        }
      }
      if (plan.payload_attack()) {
        // edge_w[e] still holds the block-start model every client of
        // edge e started from — the sign-flip reflection reference.
        for (const auto& job : jobs) {
          const index_t c = job.scratch_id;
          if (!plan.client_attacker(k, c)) continue;
          const index_t e = fed.edge_of_client(c);
          plan.corrupt_payload(k, c,
                               edge_w[static_cast<std::size_t>(e)].data(),
                               client_w[static_cast<std::size_t>(c)].data(),
                               d);
        }
      }
      for (const index_t e : edges) {
        if (!plan.enabled()) {
          auto clients = topo.clients_of_edge(e);
          detail::robust_uniform_average(client_w, clients, agg,
                                         edge_w[static_cast<std::size_t>(e)]);
          continue;
        }
        if (plan.edge_crashed(k, e)) continue;  // area offline, model frozen
        // Edge aggregation runs over whichever clients actually reported;
        // an edge with zero survivors keeps its previous block's model.
        std::vector<index_t> surv;
        for (const index_t c : topo.clients_of_edge(e)) {
          if (plan.client_offline(k, c)) continue;  // silent, never sent
          if (plan.client_dropped(k, c)) {
            result.comm.client_edge_fault.note_lost_report();
            continue;
          }
          result.comm.client_edge_fault.note_delivered();
          result.comm.client_edge_fault.note_straggle(
              plan.straggler_mult(k, c));
          surv.push_back(c);
        }
        if (!surv.empty()) {
          detail::robust_uniform_average(client_w, surv, agg,
                                         edge_w[static_cast<std::size_t>(e)]);
        }
      }
      result.comm.client_edge_rounds += 1;
      result.comm.client_edge_models_down +=
          participating * static_cast<std::uint64_t>(n0);
      result.comm.client_edge_models_up +=
          participating * static_cast<std::uint64_t>(n0);
      result.comm.client_edge_bytes +=
          participating * static_cast<std::uint64_t>(n0) *
          (sim::payload_bytes(d, 0) +
           sim::payload_bytes(d, opts.quantize_bits));
    }

    if (opts.quantize_bits > 0) {
      for (const index_t e : edges) {
        rng::Xoshiro256 qgen = round_gen.split(detail::kTagQuant)
                                   .split(static_cast<std::uint64_t>(e));
        sim::quantize_payload(edge_w[static_cast<std::size_t>(e)],
                              opts.quantize_bits, qgen);
      }
    }
    bool aggregated = true;
    if (!plan.enabled()) {
      detail::robust_uniform_average(edge_w, edges, agg, result.w);
    } else {
      std::vector<char> delivered(edges.size(), 0);
      for (std::size_t j = 0; j < edges.size(); ++j) {
        const index_t e = edges[j];
        if (plan.edge_crashed(k, e)) continue;
        if (plan.deliver(k, sim::fault_msg(sim::kMsgModelUp, e),
                         result.comm.edge_cloud_fault)) {
          delivered[j] = 1;
        }
      }
      aggregated = detail::degraded_uniform_average(
          edge_w, edges, delivered, opts.on_fault, opts.stale_decay, k,
          stale, result.w, result.w, agg);
    }
    if (aggregated) tensor::project_l2_ball(result.w, opts.w_radius);
    result.comm.edge_cloud_rounds += 1;
    result.comm.edge_cloud_models_up += participating;
    result.comm.edge_cloud_bytes +=
        participating * (sim::payload_bytes(d, 0) +
                         sim::payload_bytes(d, opts.quantize_bits));

    detail::update_running_average(result.w_avg, result.w, k);
    detail::maybe_record(model, fed, pool, k + 1, opts.rounds,
                         opts.eval_every, result.w, result.comm,
                         result.history);
    detail::snapshot_round_end(opts.snapshot, k, rs);
  }
  return result;
}

TrainResult train_hierfavg(const nn::Model& model,
                           const data::FederatedDataset& fed,
                           const sim::HierTopology& topo,
                           const TrainOptions& opts) {
  return train_hierfavg(model, fed, topo, opts,
                        parallel::ThreadPool::global());
}

}  // namespace hm::algo
