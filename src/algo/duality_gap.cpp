#include "algo/duality_gap.hpp"

#include "core/check.hpp"
#include "metrics/evaluation.hpp"
#include "parallel/parallel_for.hpp"
#include "tensor/vecops.hpp"

namespace hm::algo {

namespace {

/// F(w, p) = sum_e p_e f_e(w), with exact (full-shard) edge losses.
scalar_t weighted_loss(const nn::Model& model,
                       const data::FederatedDataset& fed, nn::ConstVecView w,
                       const std::vector<scalar_t>& p,
                       parallel::ThreadPool& pool) {
  const auto losses = metrics::per_edge_loss(model, w, fed, pool);
  scalar_t total = 0;
  for (std::size_t e = 0; e < losses.size(); ++e) total += p[e] * losses[e];
  return total;
}

/// Full gradient of F(., p) at w: sum over edges of p_e * grad f_e, with
/// f_e the exact mean loss over the edge's client shards.
void weighted_gradient(const nn::Model& model,
                       const data::FederatedDataset& fed, nn::ConstVecView w,
                       const std::vector<scalar_t>& p,
                       parallel::ThreadPool& pool,
                       std::vector<scalar_t>& grad) {
  const index_t num_edges = fed.num_edges();
  const index_t d = model.num_params();
  std::vector<std::vector<scalar_t>> edge_grads(
      static_cast<std::size_t>(num_edges),
      std::vector<scalar_t>(static_cast<std::size_t>(d), 0));
  parallel::parallel_for(
      pool, 0, num_edges,
      [&](index_t e) {
        auto ws = model.make_workspace();
        std::vector<scalar_t> g(static_cast<std::size_t>(d));
        auto& acc = edge_grads[static_cast<std::size_t>(e)];
        index_t samples = 0;
        for (index_t i = 0; i < fed.clients_per_edge; ++i) {
          const data::Dataset& shard = fed.shard(e, i);
          const auto batch = nn::all_indices(shard.size());
          model.loss_and_grad(w, shard, batch, g, *ws);
          tensor::axpy(static_cast<scalar_t>(shard.size()), g, acc);
          samples += shard.size();
        }
        tensor::scale(scalar_t{1} / static_cast<scalar_t>(samples), acc);
      },
      /*grain=*/1);
  std::fill(grad.begin(), grad.end(), scalar_t{0});
  for (index_t e = 0; e < num_edges; ++e) {
    tensor::axpy(p[static_cast<std::size_t>(e)],
                 edge_grads[static_cast<std::size_t>(e)], grad);
  }
}

}  // namespace

DualityGapEstimate estimate_duality_gap(const nn::Model& model,
                                        const data::FederatedDataset& fed,
                                        nn::ConstVecView w,
                                        const std::vector<scalar_t>& p,
                                        const DualityGapOptions& opts,
                                        parallel::ThreadPool& pool) {
  HM_CHECK_MSG(model.is_convex(),
               "duality gap is only meaningful for convex losses");
  HM_CHECK(p.size() == static_cast<std::size_t>(fed.num_edges()));
  HM_CHECK(opts.minimize_iters > 0 && opts.eta > 0);

  DualityGapEstimate est;

  // Primal term: linear in p', maximized in closed form.
  const auto losses = metrics::per_edge_loss(model, w, fed, pool);
  est.primal = max_linear_over_simplex(losses, opts.p_set);

  // Dual term: projected full-gradient descent on F(., p) from w.
  std::vector<scalar_t> w_min(w.begin(), w.end());
  std::vector<scalar_t> grad(w.size());
  scalar_t best = weighted_loss(model, fed, w_min, p, pool);
  for (index_t it = 0; it < opts.minimize_iters; ++it) {
    weighted_gradient(model, fed, w_min, p, pool, grad);
    tensor::axpy(-opts.eta, grad, nn::VecView(w_min));
    tensor::project_l2_ball(w_min, opts.w_radius);
    const scalar_t value = weighted_loss(model, fed, w_min, p, pool);
    if (value < best) best = value;
  }
  est.dual = best;
  est.gap = est.primal - est.dual;
  return est;
}

}  // namespace hm::algo
