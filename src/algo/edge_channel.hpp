// The trainer's view of "run phase 1 / phase 2 on the edges": an
// exchange boundary that either calls EdgeProgram directly (in-proc,
// bit-exact oracle) or ships the round state over a net::Transport to
// per-lane EdgeProgram replicas (loopback or forked socket workers).
//
// Failure contract: a backend that can_fail() marks the edges of a dead
// lane in the sim::EdgeLiveness ledger instead of throwing. The trainer
// folds `live` into the same degraded-aggregation paths that planned
// edge-crash faults take, so OnFault::{kRenormalize, kReuseStale,
// kSkipRound} govern real process deaths too.
#pragma once

#include <memory>
#include <vector>

#include "algo/options.hpp"
#include "data/federated.hpp"
#include "nn/model.hpp"
#include "parallel/thread_pool.hpp"
#include "sim/liveness.hpp"
#include "sim/topology.hpp"

namespace hm::algo::detail {

class EdgeChannel {
 public:
  virtual ~EdgeChannel() = default;

  /// Whether edges can drop out for real (worker death). When false the
  /// trainer skips provisioning degraded-mode state for transport
  /// failures and `live` is never touched.
  virtual bool can_fail() const = 0;

  /// Run phase 1 on the participating `edges` (see EdgeProgram::phase1
  /// for the buffer contract). On a fallible backend, edges served by a
  /// lane that is down — or dies during the exchange — are marked in
  /// `live` and get edge_has_ckpt = 0; their edge_w slots keep the
  /// freshly seeded broadcast model, exactly like a planned edge crash.
  virtual void phase1(index_t k, index_t c1, index_t c2,
                      const std::vector<index_t>& edges,
                      const std::vector<scalar_t>& w,
                      std::vector<std::vector<scalar_t>>& edge_w,
                      std::vector<std::vector<scalar_t>>& edge_ckpt,
                      std::vector<char>& edge_has_ckpt,
                      sim::EdgeLiveness& live) = 0;

  /// Run phase 2 on the loss-estimation `edges` (see EdgeProgram::phase2
  /// for the alignment contract). Dead lanes leave their jobs' loss
  /// slots untouched and mark their edges in `live`.
  virtual void phase2(index_t k, const std::vector<index_t>& edges,
                      const std::vector<scalar_t>& checkpoint,
                      const std::vector<char>& client_ok,
                      std::vector<scalar_t>& client_losses,
                      sim::EdgeLiveness& live) = 0;
};

/// Build the channel selected by opts.transport.kind. For kSocket the
/// worker processes are forked here and torn down by the destructor.
std::unique_ptr<EdgeChannel> make_edge_channel(
    const nn::Model& model, const data::FederatedDataset& fed,
    const sim::HierTopology& topo, const TrainOptions& opts,
    parallel::ThreadPool& pool);

}  // namespace hm::algo::detail
