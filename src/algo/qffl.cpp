#include "algo/qffl.hpp"

#include <cmath>

#include "algo/local_sgd.hpp"
#include "algo/trainer_common.hpp"
#include "core/check.hpp"
#include "obs/obs.hpp"
#include "parallel/parallel_for.hpp"
#include "sim/quantize.hpp"
#include "tensor/vecops.hpp"

namespace hm::algo {

TrainResult train_qffl(const nn::Model& model,
                       const data::FederatedDataset& fed,
                       const TrainOptions& opts, scalar_t q,
                       parallel::ThreadPool& pool) {
  fed.validate();
  HM_CHECK(opts.rounds > 0 && opts.tau1 > 0 && opts.eta_w > 0);
  HM_CHECK_MSG(q >= 0, "q must be nonnegative");
  const index_t d = model.num_params();
  const index_t num_clients = fed.num_clients();
  const index_t m =
      opts.sampled_clients > 0 ? opts.sampled_clients : num_clients;
  HM_CHECK(m <= num_clients);
  const scalar_t lipschitz = 1 / opts.eta_w;  // the L of q-FedAvg

  rng::Xoshiro256 root(opts.seed);

  TrainResult result;
  result.w.assign(static_cast<std::size_t>(d), 0);
  {
    rng::Xoshiro256 init_gen = root.split(detail::kTagInit);
    model.init_params(result.w, init_gen);
  }
  result.p = detail::uniform_weights(fed.num_edges());
  result.w_avg = result.w;
  result.p_avg = result.p;

  std::vector<std::vector<scalar_t>> client_w(
      static_cast<std::size_t>(num_clients),
      std::vector<scalar_t>(static_cast<std::size_t>(d)));
  std::vector<scalar_t> client_loss(static_cast<std::size_t>(num_clients), 0);
  std::vector<ClientScratch> scratch(static_cast<std::size_t>(num_clients));
  const sim::ClusterSim cluster(pool);
  BatchEngineState bstate;

  detail::RunState rs;
  rs.algo_id = detail::kAlgoQffl;
  rs.seed = opts.seed;
  rs.root = &root;
  rs.w = &result.w;
  rs.w_avg = &result.w_avg;
  rs.comm = &result.comm;
  rs.history = &result.history;
  const index_t k0 = detail::resume_round(opts.resume_from, rs);

  if (k0 == 0) {
    detail::maybe_record(model, fed, pool, 0, opts.rounds, opts.eval_every,
                         result.w, result.comm, result.history);
  }

  for (index_t k = k0; k < opts.rounds; ++k) {
    HM_OBS_SPAN("qffl.round", "algo", k, 0);
    HM_OBS_INC("algo.qffl.rounds");
    rng::Xoshiro256 round_gen = root.split(static_cast<std::uint64_t>(k) + 1);
    rng::Xoshiro256 sample_gen = round_gen.split(detail::kTagSampleEdges);
    const auto clients =
        rng::sample_without_replacement(num_clients, m, sample_gen);
    result.comm.edge_cloud_models_down +=
        static_cast<std::uint64_t>(clients.size());

    // F_k at the broadcast model (full shard — exact, cheap here).
    cluster.run_devices(
        static_cast<index_t>(clients.size()), [&](index_t j) {
          const index_t n = clients[static_cast<std::size_t>(j)];
          const data::Dataset& shard = fed.client_shard_at(k, n);
          auto& sc = scratch[static_cast<std::size_t>(n)];
          sc.ensure(model);
          client_loss[static_cast<std::size_t>(n)] = model.loss(
              result.w, shard, nn::all_indices(shard.size()), *sc.ws);
        });
    LocalSgdConfig cfg;
    cfg.steps = opts.tau1;
    cfg.batch_size = opts.batch_size;
    cfg.eta = opts.eta_w;
    cfg.w_radius = opts.w_radius;
    cfg.weight_decay = opts.weight_decay;
    cfg.prox_mu = opts.prox_mu;
    std::vector<LocalSgdJob> jobs;
    std::vector<rng::Xoshiro256> gens;
    jobs.reserve(clients.size());
    gens.reserve(clients.size());
    for (const index_t n : clients) {
      auto& w_local = client_w[static_cast<std::size_t>(n)];
      tensor::copy(result.w, w_local);
      gens.push_back(round_gen.split(detail::kTagLocal)
                         .split(static_cast<std::uint64_t>(n)));
      jobs.push_back({&fed.client_shard_at(k, n), w_local, {}, &gens.back(),
                      n});
    }
    run_local_sgd_jobs(model, cfg, jobs, scratch, bstate, opts.batched,
                       cluster);

    // Aggregate the q-FedAvg update. Delta w_k = L (w - w_bar_k).
    std::vector<scalar_t> update(static_cast<std::size_t>(d), 0);
    scalar_t h_total = 0;
    for (const index_t n : clients) {
      const auto& w_bar = client_w[static_cast<std::size_t>(n)];
      const scalar_t f_k =
          std::max<scalar_t>(client_loss[static_cast<std::size_t>(n)], 1e-10);
      const scalar_t f_q = std::pow(f_k, q);
      scalar_t delta_sq = 0;
      for (std::size_t i = 0; i < update.size(); ++i) {
        const scalar_t delta_i = lipschitz * (result.w[i] - w_bar[i]);
        update[i] += f_q * delta_i;
        delta_sq += delta_i * delta_i;
      }
      h_total += (q > 0 ? q * std::pow(f_k, q - 1) * delta_sq : 0) +
                 lipschitz * f_q;
    }
    HM_CHECK(h_total > 0);
    tensor::axpy(-1 / h_total, update, nn::VecView(result.w));
    tensor::project_l2_ball(result.w, opts.w_radius);

    result.comm.edge_cloud_rounds += 1;
    result.comm.edge_cloud_models_up +=
        static_cast<std::uint64_t>(clients.size());
    result.comm.edge_cloud_scalars +=
        2 * static_cast<std::uint64_t>(clients.size());  // F_k and h_k
    result.comm.edge_cloud_bytes +=
        static_cast<std::uint64_t>(clients.size()) *
        (sim::payload_bytes(d, 0) + sim::payload_bytes(d, opts.quantize_bits) +
         16);

    detail::update_running_average(result.w_avg, result.w, k);
    detail::maybe_record(model, fed, pool, k + 1, opts.rounds,
                         opts.eval_every, result.w, result.comm,
                         result.history);
    detail::snapshot_round_end(opts.snapshot, k, rs);
  }
  return result;
}

TrainResult train_qffl(const nn::Model& model,
                       const data::FederatedDataset& fed,
                       const TrainOptions& opts, scalar_t q) {
  return train_qffl(model, fed, opts, q, parallel::ThreadPool::global());
}

}  // namespace hm::algo
