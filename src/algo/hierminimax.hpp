// HierMinimax (Algorithm 1 of the paper): hierarchical distributed
// minimax optimization over the client-edge-cloud architecture.
//
// Each training round k:
//   Phase 1 (model update): the cloud samples m_E edge areas by the
//     current weights p^(k) (with replacement, so Eq. (5) is unbiased)
//     and a checkpoint index (c1, c2) uniform on [tau1] x [tau2]. Every
//     sampled edge runs tau2 client-edge aggregation blocks, each of
//     tau1 projected local SGD steps per client (Eq. 4); the block-c2
//     iterate after c1 steps is captured as the checkpoint. The cloud
//     averages final edge models (Eq. 5) and checkpoint models (Eq. 6).
//   Phase 2 (weight update): the cloud samples m_E edges *uniformly*,
//     broadcasts the checkpoint model, collects mini-batch loss
//     estimates, forms the unbiased gradient estimate v with
//     v_e = (N_E / m_E) f_e(checkpoint), and ascends
//     p^(k+1) = Proj_P(p^(k) + eta_p * tau1 * tau2 * v)   (Eq. 7).
#pragma once

#include "algo/options.hpp"
#include "data/federated.hpp"
#include "nn/model.hpp"
#include "sim/topology.hpp"

namespace hm::algo {

/// Train with HierMinimax. `fed` must have one shard per topology client
/// and one test set per edge. Uses opts.tau1, opts.tau2, opts.sampled_edges
/// (m_E, for both phases), opts.eta_w, opts.eta_p, opts.p_set.
TrainResult train_hierminimax(const nn::Model& model,
                              const data::FederatedDataset& fed,
                              const sim::HierTopology& topo,
                              const TrainOptions& opts,
                              parallel::ThreadPool& pool);

/// Overload on the global thread pool.
TrainResult train_hierminimax(const nn::Model& model,
                              const data::FederatedDataset& fed,
                              const sim::HierTopology& topo,
                              const TrainOptions& opts);

}  // namespace hm::algo
