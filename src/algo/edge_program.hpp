// The edge-and-below share of one HierMinimax round, factored out of the
// trainer so it can run anywhere: in the trainer's process (the in-proc
// oracle and the loopback transport) or inside a forked worker process
// that serves a subset of the edges.
//
// The split is exact, not approximate. Everything here is a pure
// function of (round index, checkpoint indices, the broadcast model, the
// run options): all randomness comes from non-advancing splits of a
// root generator rebuilt from opts.seed, the fault plan is a pure
// function of (fault seed, round, entity), and per-client buffers are
// written before every read within a round. Two EdgeProgram instances —
// in different processes — therefore produce bit-identical per-edge
// results for any partition of the edge set (run_local_sgd_jobs and
// Model::loss_many are bit-identical per job regardless of grouping).
//
// Deliberately NOT here: every sim::CommStats update. Fault metering
// accumulates order-sensitive floating-point sums, so the coordinator
// replays the accounting loops itself, in the exact legacy order,
// whichever transport carried the computation.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "algo/local_sgd.hpp"
#include "algo/options.hpp"
#include "algo/trainer_common.hpp"
#include "data/federated.hpp"
#include "nn/model.hpp"
#include "parallel/thread_pool.hpp"
#include "rng/rng.hpp"
#include "sim/cluster.hpp"
#include "sim/fault.hpp"
#include "sim/topology.hpp"

namespace hm::algo::detail {

class EdgeProgram {
 public:
  EdgeProgram(const nn::Model& model, const data::FederatedDataset& fed,
              const sim::HierTopology& topo, const TrainOptions& opts,
              parallel::ThreadPool& pool);

  /// Phase 1 for the given participating edges: seed each edge's model
  /// from the broadcast `w`, run the tau2 client-edge aggregation blocks
  /// (local SGD, quantization, payload attacks, per-edge robust
  /// aggregation, checkpoint capture at block c2), leaving the per-edge
  /// aggregates in edge_w / edge_ckpt / edge_has_ckpt. The three output
  /// arrays are full-size (indexed by edge id); only the listed edges'
  /// slots are touched. Uplink quantization toward the cloud is NOT
  /// applied — that is the coordinator's hop.
  void phase1(index_t k, index_t c1, index_t c2,
              std::span<const index_t> edges, const std::vector<scalar_t>& w,
              std::vector<std::vector<scalar_t>>& edge_w,
              std::vector<std::vector<scalar_t>>& edge_ckpt,
              std::vector<char>& edge_has_ckpt);

  /// Phase 2 for the given loss-estimation edges: score every client job
  /// with client_ok[j*n0 + i] set (j indexes `edges`, i the client slot)
  /// at the shared `checkpoint`, writing losses into the aligned
  /// client_losses span. Skipped jobs' slots are left untouched (the
  /// caller zero-fills).
  void phase2(index_t k, std::span<const index_t> edges,
              const std::vector<scalar_t>& checkpoint,
              std::span<const char> client_ok,
              std::span<scalar_t> client_losses);

 private:
  std::vector<scalar_t>& ensure(std::vector<scalar_t>& v) const;

  const nn::Model& model_;
  const data::FederatedDataset& fed_;
  const sim::HierTopology& topo_;
  const TrainOptions& opts_;
  rng::Xoshiro256 root_;  // never advanced, only split (resume-safe)
  sim::FaultPlan plan_;
  sim::ClusterSim cluster_;
  AggregateSpec agg_;
  std::vector<std::vector<scalar_t>> client_w_;
  std::vector<std::vector<scalar_t>> client_ckpt_;
  std::vector<ClientScratch> scratch_;
  BatchEngineState bstate_;
  PoisonStore poison_;
  std::unique_ptr<nn::Workspace> ph2_ws_;
};

}  // namespace hm::algo::detail
