// Shared configuration and result types for all five federated
// algorithms, so benchmark comparisons are apples-to-apples.
#pragma once

#include <string>
#include <vector>

#include "algo/projection.hpp"
#include "io/snapshot.hpp"
#include "metrics/history.hpp"
#include "net/transport.hpp"
#include "sim/comm.hpp"
#include "sim/fault.hpp"

namespace hm::algo {

/// Degradation policy when a sampled participant (client or edge) fails
/// to report its update for a round (sim/fault.hpp).
enum class OnFault {
  /// Drop the casualties and renormalize the surviving participants'
  /// aggregation weights to sum to 1 (the FedAvg-style default).
  kRenormalize,
  /// Substitute each casualty's last delivered update, geometrically
  /// decayed toward the broadcast model by its staleness:
  /// contribution = decay^age * stale + (1 - decay^age) * broadcast.
  /// A participant that never delivered contributes the broadcast model.
  kReuseStale,
  /// Abandon the round's aggregation entirely: the global model and the
  /// minimax weights stay unchanged (traffic is still charged — the
  /// failure is discovered mid-round).
  kSkipRound,
};

/// How surviving participants' model reports are combined. kMean is the
/// exact pre-existing weighted average (bit-identical code path); the
/// robust policies defend against Byzantine reports at the cost of
/// statistical efficiency. Applies to every *model* aggregation step
/// (client->edge and edge->cloud); checkpoint averaging for Phase-2 loss
/// estimation always uses the mean (the checkpoint is a variance-reduction
/// device, not an attack surface the defender controls).
enum class Aggregate {
  /// Weighted arithmetic mean (the default; fixed fused-kernel
  /// reduction order).
  kMean,
  /// Coordinate-wise weighted median. Ties at exactly half the total
  /// weight take the midpoint of the two straddling values, with inputs
  /// ordered by (value, input index) — deterministic at 0 ULP.
  kMedian,
  /// Coordinate-wise trimmed mean: drop floor(trim_frac * total) weight
  /// units from each end of the sorted coordinate values (capped so at
  /// least one unit survives), average the rest in sorted order.
  kTrimmedMean,
};

struct TrainOptions {
  index_t rounds = 100;          // K — cloud-level training rounds
  index_t tau1 = 1;              // local SGD steps per aggregation
  index_t tau2 = 1;              // client-edge aggregations per round
                                 // (three-layer methods only)
  index_t batch_size = 1;        // mini-batch size for local SGD
  scalar_t eta_w = 0.01;         // model learning rate
  scalar_t eta_p = 0.01;         // weight-vector learning rate
  index_t sampled_edges = 0;     // m_E; 0 = all edges participate
  index_t sampled_clients = 0;   // m for two-layer methods; 0 = all
  scalar_t w_radius = 0;         // L2-ball radius for W; 0 = W = R^d
  scalar_t weight_decay = 0;     // decoupled L2 regularization per SGD step
  scalar_t prox_mu = 0;          // FedProx proximal term strength (0 = off)
  SimplexSet p_set;              // the constraint set P
  seed_t seed = 1;
  index_t eval_every = 10;       // per-edge evaluation cadence in rounds
                                 // (0 = final round only)
  index_t loss_est_batch = 32;   // mini-batch for Phase-2 loss estimation
                                 // (0 = full client shard)
  int quantize_bits = 0;         // stochastic uplink quantization (bits per
                                 // coordinate; 0 = off) a la Hier-Local-QSGD
  bool use_checkpoint = true;    // HierMinimax only: ablation switch — when
                                 // false, Phase 2 estimates losses on the
                                 // final round model w^(k+1) instead of the
                                 // random checkpoint of Eq. (6)
  bool batched = false;          // batched multi-client execution engine:
                                 // all sampled clients of a parallel block
                                 // advance in lockstep through fused
                                 // per-step gradient evaluations
                                 // (algo/local_sgd.hpp). Bit-identical to
                                 // the per-client path — a perf toggle,
                                 // never a semantics toggle.

  // Fault injection (sim/fault.hpp). The default spec is disabled and the
  // trainers take their fault-free path bit-identically; an enabled spec
  // with zero probabilities is also bit-identical to the fault-free path
  // in model outputs (only delivery counters differ).
  sim::FaultSpec fault;
  OnFault on_fault = OnFault::kRenormalize;
  scalar_t stale_decay = 0.5;    // kReuseStale: per-round-of-age decay of a
                                 // casualty's stale update toward the
                                 // broadcast model, in [0, 1]
  Aggregate aggregate = Aggregate::kMean;  // model-report combiner
  scalar_t trim_frac = 0.2;      // kTrimmedMean: weight fraction trimmed
                                 // from each end, in [0, 0.5)

  // Crash-safe snapshots (io/snapshot.hpp). When `snapshot.enabled()`,
  // the trainer writes a durable full-state snapshot after every
  // `every_k_rounds`-th round. When `resume_from` names a snapshot
  // directory, training restarts from its newest valid snapshot and the
  // remaining trajectory is bit-identical to the uninterrupted run
  // (options and seed must match the original run; mismatches throw
  // CheckError). An empty/missing directory is a fresh start.
  io::SnapshotPolicy snapshot;
  std::string resume_from;

  // Transport backend (net/transport.hpp), HierMinimax only for now.
  // kInproc is the oracle (direct calls, no serialization); kLoopback
  // routes every edge exchange through the wire codec in-process (never
  // fails); kSocket forks `transport.workers` worker processes, each
  // serving the edges with id % workers == lane. All three produce
  // bit-identical (w, p, history) trajectories; under kSocket a worker
  // crash surfaces as the corresponding edges' crash fault events and is
  // handled by `on_fault` exactly like a planned edge crash.
  net::TransportSpec transport;
};

struct TrainResult {
  std::vector<scalar_t> w;       // final global model w^(K)
  std::vector<scalar_t> w_avg;   // running average of w^(k) (the ŵ of §5.1)
  std::vector<scalar_t> p;       // final weights (uniform for min methods)
  std::vector<scalar_t> p_avg;   // time-averaged weights (the p̂ of §5.1)
  metrics::TrainingHistory history;
  sim::CommStats comm;
};

}  // namespace hm::algo
