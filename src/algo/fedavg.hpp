// FedAvg (McMahan et al., AISTATS'17): the standard two-layer federated
// minimization baseline. Clients communicate with the server directly
// over the wide-area segment (charged as edge-cloud traffic); each round
// samples m clients uniformly, runs tau1 local SGD steps, and averages.
#pragma once

#include "algo/options.hpp"
#include "data/federated.hpp"
#include "nn/model.hpp"

namespace hm::algo {

TrainResult train_fedavg(const nn::Model& model,
                         const data::FederatedDataset& fed,
                         const TrainOptions& opts,
                         parallel::ThreadPool& pool);

TrainResult train_fedavg(const nn::Model& model,
                         const data::FederatedDataset& fed,
                         const TrainOptions& opts);

}  // namespace hm::algo
