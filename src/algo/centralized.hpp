// Centralized first-order minimax solvers — the classical family the
// paper positions itself against (§2.2): Gradient Descent Ascent (GDA)
// [9, 20], Extra-Gradient (EG) [16], and Optimistic GDA (OGDA) [7].
//
// These operate on an abstract saddle problem min_x max_y f(x, y) given
// gradient oracles, and serve two purposes in this repo: (1) reference
// solvers for testing the minimax substrate (EG/OGDA converge on
// bilinear games where plain GDA orbits — the textbook separation), and
// (2) centralized "upper bound" solvers for the federated objective
// F(w, p) when all data is pooled.
#pragma once

#include <functional>
#include <vector>

#include "algo/projection.hpp"

namespace hm::algo {

/// Gradient oracle for min_x max_y f(x, y): writes grad_x and grad_y at
/// (x, y). Implementations may be deterministic or stochastic.
using SaddleOracle = std::function<void(
    ConstVecView x, ConstVecView y, VecView grad_x, VecView grad_y)>;

/// Projection hooks for the feasible sets (identity if empty).
using Projector = std::function<void(VecView)>;

struct SaddleOptions {
  index_t iterations = 1000;
  scalar_t eta_x = 0.01;
  scalar_t eta_y = 0.01;
  Projector project_x;  // nullptr = unconstrained
  Projector project_y;
  bool average_iterates = true;  // return time-averaged (x̄, ȳ)
};

struct SaddleResult {
  std::vector<scalar_t> x;      // last iterate
  std::vector<scalar_t> y;
  std::vector<scalar_t> x_avg;  // time-averaged iterate
  std::vector<scalar_t> y_avg;
};

/// Simultaneous GDA: x -= eta_x grad_x, y += eta_y grad_y.
SaddleResult solve_gda(const SaddleOracle& oracle, std::vector<scalar_t> x0,
                       std::vector<scalar_t> y0, const SaddleOptions& opts);

/// Extra-gradient (Korpelevich): a half step to a mid point, then the
/// real step using the mid-point gradients.
SaddleResult solve_extragradient(const SaddleOracle& oracle,
                                 std::vector<scalar_t> x0,
                                 std::vector<scalar_t> y0,
                                 const SaddleOptions& opts);

/// Optimistic GDA: step with 2*g_t - g_{t-1} (one oracle call per
/// iteration; approximates EG).
SaddleResult solve_ogda(const SaddleOracle& oracle, std::vector<scalar_t> x0,
                        std::vector<scalar_t> y0, const SaddleOptions& opts);

}  // namespace hm::algo
