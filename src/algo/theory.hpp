// Closed-form evaluation of the paper's convergence theory: the Theorem 1
// duality-gap bound (convex), the Theorem 2 Moreau-envelope bound
// (non-convex), and the §5 alpha-schedules trading communication
// complexity against convergence rate (Table 1).
#pragma once

#include "core/types.hpp"

namespace hm::algo::theory {

/// Problem constants of Assumptions 1-5.
struct ProblemConstants {
  scalar_t radius_w = 10;   // R_W
  scalar_t radius_p = 1.41; // R_P (diameter of the simplex is sqrt(2))
  scalar_t smoothness = 1;  // L
  scalar_t grad_w = 1;      // G_w
  scalar_t grad_p = 1;      // G_p
  scalar_t sigma_w = 1;     // stochastic gradient std on w
  scalar_t sigma_p = 1;     // stochastic gradient std on p
  scalar_t dissimilarity = 1;  // Psi
};

/// Algorithm configuration entering the bounds.
struct AlgoConfig {
  index_t num_edges = 10;      // N_E
  index_t clients_per_edge = 3;  // N_0
  index_t sampled_edges = 5;   // m_E
  index_t tau1 = 2;
  index_t tau2 = 2;
  index_t rounds = 100;        // K; T = K * tau1 * tau2
  scalar_t eta_w = 0.01;
  scalar_t eta_p = 0.01;

  index_t total_iterations() const { return rounds * tau1 * tau2; }  // T
  index_t sampled_clients() const { return sampled_edges * clients_per_edge; }
};

/// Theorem 1: upper bound on the expected duality gap (convex loss).
/// Also exposes the four labelled components of the bound.
struct Theorem1Bound {
  scalar_t maximization_gap_p = 0;   // first three terms (p update)
  scalar_t minimization_gap_w = 0;   // next three terms (w update)
  scalar_t client_edge_term = 0;     // client-edge aggregation penalty
  scalar_t edge_cloud_term = 0;      // edge-cloud aggregation penalty
  scalar_t total = 0;
};

Theorem1Bound theorem1_bound(const ProblemConstants& c, const AlgoConfig& a);

/// Lemma 1 prerequisite: 1 - 20 eta_w^2 L^2 tau1^2 (1 + tau2^2) >= 1/2.
bool lemma1_step_size_ok(const ProblemConstants& c, const AlgoConfig& a);

/// Theorem 2: upper bound on the time-averaged squared Moreau-envelope
/// gradient (non-convex loss).
scalar_t theorem2_bound(const ProblemConstants& c, const AlgoConfig& a);

/// Lemma 2 prerequisite: 1 - 2 eta_w L tau1 (1 + tau2) >= 1/2.
bool lemma2_step_size_ok(const ProblemConstants& c, const AlgoConfig& a);

/// §5 alpha-schedule: for tau1*tau2 ~ T^alpha, the edge-cloud
/// communication complexity is Theta(T^{1-alpha}) and the convergence
/// rates are O(T^{-(1-alpha)/2}) (convex) / O(T^{-(1-alpha)/4})
/// (non-convex). This struct tabulates Table 1's scaling exponents.
struct TradeoffPoint {
  scalar_t alpha = 0;
  scalar_t comm_exponent = 1;            // T^{1-alpha}
  scalar_t rate_exponent_convex = 0.5;   // T^{-(1-alpha)/2}
  scalar_t rate_exponent_nonconvex = 0.25;
  scalar_t eta_p_exponent_convex = 0;    // eta_p ~ T^{-(1+alpha)/2}
  scalar_t eta_w_exponent_convex = 0;    // eta_w ~ T^{-(1+alpha)/2}; the
                                         // paper's printed §5.1 exponent is
                                         // inconsistent for alpha > 1/3 —
                                         // see theory.cpp for the derivation
  scalar_t eta_p_exponent_nonconvex = 0; // eta_p ~ T^{-(1+3alpha)/4}
  scalar_t eta_w_exponent_nonconvex = 0; // eta_w ~ T^{-(3+alpha)/4}
};

TradeoffPoint tradeoff(scalar_t alpha);

/// Concrete (tau1*tau2, eta_w, eta_p) schedule for a given T and alpha
/// under the convex rule of §5.1.
struct Schedule {
  index_t tau_product = 1;  // tau1 * tau2 ~ T^alpha
  scalar_t eta_w = 0;
  scalar_t eta_p = 0;
};

Schedule convex_schedule(index_t total_iterations, scalar_t alpha,
                         scalar_t eta_scale = 1.0);
Schedule nonconvex_schedule(index_t total_iterations, scalar_t alpha,
                            scalar_t eta_scale = 1.0);

}  // namespace hm::algo::theory
