// q-FFL / q-FedAvg (Li et al., "Fair Resource Allocation in Federated
// Learning", ICLR'20 [19]) — an *additional* fairness baseline beyond the
// paper's comparisons: instead of a minimax game over weights, it
// reshapes the objective to (1/(q+1)) sum_k F_k^{q+1}, which upweights
// high-loss clients smoothly. q = 0 recovers FedAvg exactly.
//
// Per round (q-FedAvg): sample m clients uniformly; client k evaluates
// its loss F_k at the broadcast model, runs tau1 local SGD steps to
// w_bar_k, and reports Delta w_k = L (w - w_bar_k) with L = 1/eta_w;
// the server applies
//   w <- w - sum_k F_k^q Delta w_k / sum_k (q F_k^{q-1} ||Delta w_k||^2
//                                           + L F_k^q).
#pragma once

#include "algo/options.hpp"
#include "data/federated.hpp"
#include "nn/model.hpp"

namespace hm::algo {

/// Train with q-FedAvg. `q` >= 0; q = 0 is FedAvg with the normalized
/// update rule. Uses opts.tau1 local steps, opts.sampled_clients.
TrainResult train_qffl(const nn::Model& model,
                       const data::FederatedDataset& fed,
                       const TrainOptions& opts, scalar_t q,
                       parallel::ThreadPool& pool);

TrainResult train_qffl(const nn::Model& model,
                       const data::FederatedDataset& fed,
                       const TrainOptions& opts, scalar_t q);

}  // namespace hm::algo
