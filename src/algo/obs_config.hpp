// Command-line configuration of the observability subsystem, shared by
// the examples and benchmark harnesses (DESIGN.md §15):
//
//   --obs                enable span tracing for the run (metrics
//                        counters are always live when compiled in)
//   --trace-out PATH     write the recorded spans to PATH at the end of
//                        the run (implies --obs)
//   --trace-format F     chrome (trace_event JSON for chrome://tracing /
//                        Perfetto, the default) | jsonl (one span per line)
//   --trace-capacity N   span ring capacity (default 65536; oldest spans
//                        are overwritten past that)
//   --metrics-out PATH   write a JSON metrics snapshot to PATH at the
//                        end of the run
//   --log-level L        debug | info | warn | error | off; overrides
//                        the HM_LOG_LEVEL environment variable
//
// Both output files embed the run manifest (seed, flags, SIMD dispatch,
// transport backend, build id), so a captured file is self-describing.
#pragma once

#include <string>

#include "algo/options.hpp"
#include "core/flags.hpp"
#include "obs/obs.hpp"

namespace hm::algo {

struct ObsOptions {
  bool trace = false;
  index_t trace_capacity = 65536;
  std::string trace_format = "chrome";
  std::string metrics_out;
  std::string trace_out;
};

/// Parse the obs + logging flags. Applies HM_LOG_LEVEL first, then an
/// explicit --log-level on top; arms the tracer when tracing was
/// requested (so spans from the very first round are captured).
ObsOptions apply_obs_flags(const Flags& flags);

/// Build the once-per-run manifest: base build facts (git describe,
/// build type, hook state) + seed, transport backend, SIMD dispatch
/// decision, and every flag seen on the command line ("flag.<name>").
obs::Manifest build_run_manifest(const Flags& flags,
                                 const TrainOptions& opts);

/// End-of-run export: write the metrics snapshot and/or the trace to
/// the paths configured in `opts` (atomic rename, fsynced) and disable
/// the tracer. Safe to call when neither output is configured.
void finish_obs_run(const ObsOptions& opts, const obs::Manifest& manifest);

}  // namespace hm::algo
