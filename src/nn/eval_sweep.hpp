// Block scheduler shared by the models' loss_many overrides.
//
// A loss_many call receives a run of jobs that score different dataset
// shards at one shared parameter vector. The cursor walks the stacked
// (job, row) sequence and carves it into evaluation blocks two ways:
//
//  - a long consecutive index range inside one job becomes an in-place
//    view of the dataset rows (no copy — the full-shard evaluators pass
//    all_indices, so the whole shard is one view);
//  - everything else is gathered into scratch in blocks of `block_rows`,
//    which may span job boundaries so that many small random batches
//    (the trainers' loss-estimation phases) still fill the kernels and
//    amortize the weight-operand packing across jobs.
//
// Either way the rows visit in stacked job order and each row is bitwise
// a dataset row, so per-job reductions match a per-job loss() call.
#pragma once

#include <span>

#include "data/dataset.hpp"
#include "nn/model.hpp"
#include "tensor/matrix.hpp"
#include "tensor/vecops.hpp"

namespace hm::nn::detail {

/// Advance (job, row) by one row in the stacked sequence.
inline void advance(std::span<const LossJob> jobs, std::size_t& j,
                    index_t& r) {
  if (++r >= static_cast<index_t>(jobs[j].batch.size())) {
    ++j;
    r = 0;
  }
}

class EvalBlockCursor {
 public:
  /// Walk jobs [first, last); blocks gather at most `block_rows` rows.
  /// A consecutive index run of at least `min_view_rows` becomes an
  /// in-place view instead of being gathered — models with cheap weight
  /// packs (softmax) lower it so full-shard jobs skip the row copies,
  /// models with expensive packs (MLP) keep it at block_rows so short
  /// runs still stack into pack-amortizing blocks.
  EvalBlockCursor(std::span<const LossJob> jobs, std::size_t first,
                  std::size_t last, index_t block_rows,
                  index_t min_view_rows = 0)
      : jobs_(jobs),
        cj_(first),
        last_(last),
        block_rows_(block_rows),
        min_view_rows_(min_view_rows > 0 ? min_view_rows : block_rows) {}

  bool done() const { return cj_ >= last_; }

  /// Job/row position of the next block's first row.
  std::size_t job() const { return cj_; }
  index_t row() const { return cr_; }

  /// Produce the next block and advance the cursor past its rows.
  tensor::ConstMatView next(tensor::Matrix& scratch) {
    const LossJob& head = jobs_[cj_];
    const auto n = static_cast<index_t>(head.batch.size());
    const index_t first = head.batch[static_cast<std::size_t>(cr_)];
    index_t consec = 1;
    while (cr_ + consec < n &&
           head.batch[static_cast<std::size_t>(cr_ + consec)] ==
               first + consec) {
      ++consec;
    }
    if (consec >= min_view_rows_) {
      // In-place: the dataset rows themselves are the block.
      const tensor::ConstMatView block(
          head.data->x.data() + first * head.data->dim(), consec,
          head.data->dim());
      cr_ += consec;
      if (cr_ >= n) {
        ++cj_;
        cr_ = 0;
      }
      return block;
    }
    const index_t dim = head.data->dim();
    scratch.resize_for_overwrite(block_rows_, dim);
    index_t mb = 0;
    while (mb < block_rows_ && cj_ < last_) {
      const LossJob& job = jobs_[cj_];
      tensor::copy(job.data->x.row(job.batch[static_cast<std::size_t>(cr_)]),
                   scratch.row(mb));
      ++mb;
      advance(jobs_, cj_, cr_);
    }
    return tensor::ConstMatView(scratch.data(), mb, dim);
  }

 private:
  std::span<const LossJob> jobs_;
  std::size_t cj_;
  std::size_t last_;
  index_t cr_ = 0;
  index_t block_rows_;
  index_t min_view_rows_;
};

}  // namespace hm::nn::detail
