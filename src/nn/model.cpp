#include "nn/model.hpp"

#include <numeric>

#include "core/check.hpp"

namespace hm::nn {

std::vector<index_t> all_indices(index_t n) {
  std::vector<index_t> idx(static_cast<std::size_t>(n));
  std::iota(idx.begin(), idx.end(), index_t{0});
  return idx;
}

scalar_t accuracy(const Model& model, ConstVecView w, const data::Dataset& d,
                  Workspace& ws) {
  HM_CHECK(d.size() > 0);
  const auto batch = all_indices(d.size());
  std::vector<index_t> pred(static_cast<std::size_t>(d.size()));
  model.predict(w, d, batch, pred, ws);
  index_t correct = 0;
  for (index_t i = 0; i < d.size(); ++i) {
    if (pred[static_cast<std::size_t>(i)] == d.y[static_cast<std::size_t>(i)])
      ++correct;
  }
  return static_cast<scalar_t>(correct) / static_cast<scalar_t>(d.size());
}

}  // namespace hm::nn
