#include "nn/model.hpp"

#include <numeric>

#include "core/check.hpp"

namespace hm::nn {

namespace {

/// Default batch scratch: one ordinary Workspace, shared serially.
struct FallbackBatchWorkspace final : BatchWorkspace {
  explicit FallbackBatchWorkspace(std::unique_ptr<Workspace> w)
      : inner(std::move(w)) {}
  std::unique_ptr<Workspace> inner;
};

}  // namespace

std::unique_ptr<BatchWorkspace> Model::make_batch_workspace() const {
  return std::make_unique<FallbackBatchWorkspace>(make_workspace());
}

void Model::loss_and_grad_batch(std::span<const BatchClientRef> clients,
                                std::span<scalar_t> losses,
                                BatchWorkspace& ws) const {
  HM_CHECK(losses.empty() || losses.size() == clients.size());
  auto& scratch = static_cast<FallbackBatchWorkspace&>(ws);
  for (std::size_t g = 0; g < clients.size(); ++g) {
    const BatchClientRef& cl = clients[g];
    const scalar_t loss =
        loss_and_grad(cl.w, *cl.data, cl.batch, cl.grad, *scratch.inner);
    if (!losses.empty()) losses[g] = loss;
  }
}

void Model::loss_many(std::span<const LossJob> jobs,
                      std::span<scalar_t> losses, Workspace& ws) const {
  HM_CHECK(losses.size() == jobs.size());
  for (std::size_t g = 0; g < jobs.size(); ++g) {
    const LossJob& job = jobs[g];
    losses[g] = loss(job.w, *job.data, job.batch, ws);
  }
}

std::vector<index_t> all_indices(index_t n) {
  std::vector<index_t> idx(static_cast<std::size_t>(n));
  std::iota(idx.begin(), idx.end(), index_t{0});
  return idx;
}

scalar_t accuracy(const Model& model, ConstVecView w, const data::Dataset& d,
                  Workspace& ws) {
  HM_CHECK(d.size() > 0);
  const auto batch = all_indices(d.size());
  std::vector<index_t> pred(static_cast<std::size_t>(d.size()));
  model.predict(w, d, batch, pred, ws);
  index_t correct = 0;
  for (index_t i = 0; i < d.size(); ++i) {
    if (pred[static_cast<std::size_t>(i)] == d.y[static_cast<std::size_t>(i)])
      ++correct;
  }
  return static_cast<scalar_t>(correct) / static_cast<scalar_t>(d.size());
}

}  // namespace hm::nn
