// Fully-connected ReLU network with softmax cross-entropy output — the
// non-convex model of the paper's §6.2 experiments (two hidden layers of
// 300 and 100 units there; layer sizes are configurable here).
//
// Parameter layout (flat): for each layer l in order,
//   W_l (out_l x in_l, row-major) followed by b_l (out_l).
#pragma once

#include <vector>

#include "nn/model.hpp"

namespace hm::nn {

class Mlp final : public Model {
 public:
  /// `layer_dims` = {input, hidden..., output}; at least {in, out}.
  explicit Mlp(std::vector<index_t> layer_dims);

  index_t num_params() const override { return total_params_; }
  index_t num_classes() const override { return dims_.back(); }
  index_t input_dim() const override { return dims_.front(); }
  bool is_convex() const override { return dims_.size() == 2; }

  index_t num_layers() const {
    return static_cast<index_t>(dims_.size()) - 1;
  }
  const std::vector<index_t>& layer_dims() const { return dims_; }

  /// Weight matrix view of layer l inside a flat parameter vector.
  tensor::ConstMatView weights(ConstVecView w, index_t layer) const;
  tensor::MatView weights(VecView w, index_t layer) const;
  /// Bias view of layer l.
  ConstVecView biases(ConstVecView w, index_t layer) const;
  VecView biases(VecView w, index_t layer) const;

  std::unique_ptr<Workspace> make_workspace() const override;
  void init_params(VecView w, rng::Xoshiro256& gen) const override;
  scalar_t loss_and_grad(ConstVecView w, const data::Dataset& d,
                         std::span<const index_t> batch, VecView grad,
                         Workspace& ws) const override;
  scalar_t loss(ConstVecView w, const data::Dataset& d,
                std::span<const index_t> batch, Workspace& ws) const override;
  void loss_many(std::span<const LossJob> jobs, std::span<scalar_t> losses,
                 Workspace& ws) const override;
  void predict(ConstVecView w, const data::Dataset& d,
               std::span<const index_t> batch, std::span<index_t> out,
               Workspace& ws) const override;

  /// Batched path: all clients' forward/backward GEMMs are issued as one
  /// gemm_batch per layer over stacked activation panels (clients share
  /// each parallel region), bit-identical per client to loss_and_grad.
  std::unique_ptr<BatchWorkspace> make_batch_workspace() const override;
  void loss_and_grad_batch(std::span<const BatchClientRef> clients,
                           std::span<scalar_t> losses,
                           BatchWorkspace& ws) const override;

 private:
  std::vector<index_t> dims_;
  std::vector<index_t> w_offsets_;  // start of W_l in the flat vector
  std::vector<index_t> b_offsets_;  // start of b_l
  index_t total_params_ = 0;
};

/// Convenience factory for the paper's architecture: input -> 300 -> 100
/// -> classes with ReLU activations.
Mlp make_paper_mlp(index_t input_dim, index_t num_classes);

}  // namespace hm::nn
