#include "nn/softmax_regression.hpp"

#include <cmath>

#include "core/check.hpp"
#include "tensor/activations.hpp"
#include "tensor/vecops.hpp"

namespace hm::nn {

namespace {

struct SoftmaxWorkspace final : Workspace {
  std::vector<scalar_t> logits;
};

/// View of row c of the weight matrix inside the flat parameter vector.
inline ConstVecView weight_row(ConstVecView w, index_t dim, index_t c) {
  return w.subspan(static_cast<std::size_t>(c * dim),
                   static_cast<std::size_t>(dim));
}

inline scalar_t bias(ConstVecView w, index_t dim, index_t classes,
                     index_t c) {
  return w[static_cast<std::size_t>(classes * dim + c)];
}

/// logits_c = <W_c, x> + b_c for all classes.
void compute_logits(ConstVecView w, index_t dim, index_t classes,
                    ConstVecView x, std::vector<scalar_t>& logits) {
  logits.resize(static_cast<std::size_t>(classes));
  for (index_t c = 0; c < classes; ++c) {
    logits[static_cast<std::size_t>(c)] =
        tensor::dot(weight_row(w, dim, c), x) + bias(w, dim, classes, c);
  }
}

}  // namespace

SoftmaxRegression::SoftmaxRegression(index_t input_dim, index_t num_classes)
    : dim_(input_dim), classes_(num_classes) {
  HM_CHECK(input_dim > 0 && num_classes >= 2);
}

std::unique_ptr<Workspace> SoftmaxRegression::make_workspace() const {
  return std::make_unique<SoftmaxWorkspace>();
}

void SoftmaxRegression::init_params(VecView w, rng::Xoshiro256&) const {
  // Zero init: standard (and optimal-start) for convex logistic regression.
  HM_CHECK(static_cast<index_t>(w.size()) == num_params());
  tensor::set_zero(w);
}

scalar_t SoftmaxRegression::loss_and_grad(ConstVecView w,
                                          const data::Dataset& d,
                                          std::span<const index_t> batch,
                                          VecView grad, Workspace& ws) const {
  HM_CHECK(static_cast<index_t>(w.size()) == num_params());
  HM_CHECK(static_cast<index_t>(grad.size()) == num_params());
  HM_CHECK(!batch.empty());
  HM_CHECK(d.dim() == dim_ && d.num_classes == classes_);
  auto& scratch = static_cast<SoftmaxWorkspace&>(ws);
  tensor::set_zero(grad);
  const scalar_t inv_m = scalar_t{1} / static_cast<scalar_t>(batch.size());

  scalar_t total_loss = 0;
  for (const index_t i : batch) {
    ConstVecView x = d.x.row(i);
    const index_t label = d.y[static_cast<std::size_t>(i)];
    compute_logits(w, dim_, classes_, x, scratch.logits);
    const scalar_t lse = tensor::log_sum_exp(
        tensor::ConstVecView(scratch.logits));
    total_loss += lse - scratch.logits[static_cast<std::size_t>(label)];
    // dL/dlogit_c = softmax_c - 1[c == label]; accumulate outer product.
    for (index_t c = 0; c < classes_; ++c) {
      const scalar_t p =
          std::exp(scratch.logits[static_cast<std::size_t>(c)] - lse);
      const scalar_t coeff = (p - (c == label ? 1 : 0)) * inv_m;
      if (coeff == 0) continue;
      tensor::axpy(coeff, x,
                   grad.subspan(static_cast<std::size_t>(c * dim_),
                                static_cast<std::size_t>(dim_)));
      grad[static_cast<std::size_t>(classes_ * dim_ + c)] += coeff;
    }
  }
  return total_loss * inv_m;
}

scalar_t SoftmaxRegression::loss(ConstVecView w, const data::Dataset& d,
                                 std::span<const index_t> batch,
                                 Workspace& ws) const {
  HM_CHECK(static_cast<index_t>(w.size()) == num_params());
  HM_CHECK(!batch.empty());
  auto& scratch = static_cast<SoftmaxWorkspace&>(ws);
  scalar_t total_loss = 0;
  for (const index_t i : batch) {
    compute_logits(w, dim_, classes_, d.x.row(i), scratch.logits);
    const scalar_t lse = tensor::log_sum_exp(
        tensor::ConstVecView(scratch.logits));
    total_loss += lse - scratch.logits[static_cast<std::size_t>(
                            d.y[static_cast<std::size_t>(i)])];
  }
  return total_loss / static_cast<scalar_t>(batch.size());
}

void SoftmaxRegression::predict(ConstVecView w, const data::Dataset& d,
                                std::span<const index_t> batch,
                                std::span<index_t> out, Workspace& ws) const {
  HM_CHECK(batch.size() == out.size());
  auto& scratch = static_cast<SoftmaxWorkspace&>(ws);
  for (std::size_t r = 0; r < batch.size(); ++r) {
    compute_logits(w, dim_, classes_, d.x.row(batch[r]), scratch.logits);
    out[r] = tensor::argmax(tensor::ConstVecView(scratch.logits));
  }
}

}  // namespace hm::nn
