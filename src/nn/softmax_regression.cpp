#include "nn/softmax_regression.hpp"

#include "nn/eval_sweep.hpp"

#include <cmath>

#include "core/check.hpp"
#include "tensor/activations.hpp"
#include "tensor/gemm.hpp"
#include "tensor/vecops.hpp"

namespace hm::nn {

namespace {

struct SoftmaxWorkspace final : Workspace {
  std::vector<scalar_t> logits;
  tensor::Matrix xb;          // gathered sample block (eval path)
  tensor::Matrix logit_rows;  // block x classes (eval path)
};

struct SoftmaxBatchWorkspace final : BatchWorkspace {
  tensor::Matrix xb;      // gathered batch rows of the current client
  tensor::Matrix logits;  // batch x classes
  tensor::Matrix coeff;   // batch x classes softmax-residual coefficients
  std::unique_ptr<Workspace> inner;  // oracle scratch for tiny batches
};

/// Below this batch size the stacked gemm_tn path costs more (row gather
/// plus kernel setup on a nearly empty panel) than the oracle's streamed
/// per-sample accumulation, so the batch engine delegates per client.
constexpr index_t kBatchGemmMinRows = 16;

/// Row-block size for the evaluation paths: large enough that the weight
/// matrix pack is amortized over many samples per fused sweep, small
/// enough that the gathered block stays cache-resident.
constexpr index_t kEvalBlock = 256;

/// View of row c of the weight matrix inside the flat parameter vector.
inline ConstVecView weight_row(ConstVecView w, index_t dim, index_t c) {
  return w.subspan(static_cast<std::size_t>(c * dim),
                   static_cast<std::size_t>(dim));
}

inline scalar_t bias(ConstVecView w, index_t dim, index_t classes,
                     index_t c) {
  return w[static_cast<std::size_t>(classes * dim + c)];
}

/// logits_c = <W_c, x> + b_c for all classes.
void compute_logits(ConstVecView w, index_t dim, index_t classes,
                    ConstVecView x, std::vector<scalar_t>& logits) {
  logits.resize(static_cast<std::size_t>(classes));
  for (index_t c = 0; c < classes; ++c) {
    logits[static_cast<std::size_t>(c)] =
        tensor::dot(weight_row(w, dim, c), x) + bias(w, dim, classes, c);
  }
}

/// View of one row block of the batch: consecutive index ranges (the
/// evaluate-everything path) view the data matrix in place; anything else
/// gathers the rows into scratch. Either way the rows are bitwise the
/// dataset rows, so downstream reductions are unchanged.
tensor::ConstMatView gather_block(const data::Dataset& d,
                                  std::span<const index_t> batch,
                                  index_t r0, index_t mb,
                                  tensor::Matrix& xb) {
  const index_t first = batch[static_cast<std::size_t>(r0)];
  bool consecutive = true;
  for (index_t r = 1; r < mb; ++r) {
    if (batch[static_cast<std::size_t>(r0 + r)] != first + r) {
      consecutive = false;
      break;
    }
  }
  if (consecutive) {
    return tensor::ConstMatView(d.x.data() + first * d.dim(), mb, d.dim());
  }
  xb.resize_for_overwrite(mb, d.dim());
  for (index_t r = 0; r < mb; ++r) {
    tensor::copy(d.x.row(batch[static_cast<std::size_t>(r0 + r)]),
                 xb.row(r));
  }
  return xb;
}

}  // namespace

SoftmaxRegression::SoftmaxRegression(index_t input_dim, index_t num_classes)
    : dim_(input_dim), classes_(num_classes) {
  HM_CHECK(input_dim > 0 && num_classes >= 2);
}

std::unique_ptr<Workspace> SoftmaxRegression::make_workspace() const {
  return std::make_unique<SoftmaxWorkspace>();
}

void SoftmaxRegression::init_params(VecView w, rng::Xoshiro256&) const {
  // Zero init: standard (and optimal-start) for convex logistic regression.
  HM_CHECK(static_cast<index_t>(w.size()) == num_params());
  tensor::set_zero(w);
}

scalar_t SoftmaxRegression::loss_and_grad(ConstVecView w,
                                          const data::Dataset& d,
                                          std::span<const index_t> batch,
                                          VecView grad, Workspace& ws) const {
  HM_CHECK(static_cast<index_t>(w.size()) == num_params());
  HM_CHECK(static_cast<index_t>(grad.size()) == num_params());
  HM_CHECK(!batch.empty());
  HM_CHECK(d.dim() == dim_ && d.num_classes == classes_);
  auto& scratch = static_cast<SoftmaxWorkspace&>(ws);
  tensor::set_zero(grad);
  const scalar_t inv_m = scalar_t{1} / static_cast<scalar_t>(batch.size());

  scalar_t total_loss = 0;
  for (const index_t i : batch) {
    ConstVecView x = d.x.row(i);
    const index_t label = d.y[static_cast<std::size_t>(i)];
    compute_logits(w, dim_, classes_, x, scratch.logits);
    const scalar_t lse = tensor::log_sum_exp(
        tensor::ConstVecView(scratch.logits));
    total_loss += lse - scratch.logits[static_cast<std::size_t>(label)];
    // dL/dlogit_c = softmax_c - 1[c == label]; accumulate outer product.
    for (index_t c = 0; c < classes_; ++c) {
      const scalar_t p =
          std::exp(scratch.logits[static_cast<std::size_t>(c)] - lse);
      const scalar_t coeff = (p - (c == label ? 1 : 0)) * inv_m;
      if (coeff == 0) continue;
      tensor::axpy(coeff, x,
                   grad.subspan(static_cast<std::size_t>(c * dim_),
                                static_cast<std::size_t>(dim_)));
      grad[static_cast<std::size_t>(classes_ * dim_ + c)] += coeff;
    }
  }
  return total_loss * inv_m;
}

std::unique_ptr<BatchWorkspace> SoftmaxRegression::make_batch_workspace()
    const {
  return std::make_unique<SoftmaxBatchWorkspace>();
}

void SoftmaxRegression::loss_and_grad_batch(
    std::span<const BatchClientRef> clients, std::span<scalar_t> losses,
    BatchWorkspace& ws) const {
  HM_CHECK(losses.empty() || losses.size() == clients.size());
  auto& scratch = static_cast<SoftmaxBatchWorkspace&>(ws);
  for (std::size_t g = 0; g < clients.size(); ++g) {
    const BatchClientRef& cl = clients[g];
    const data::Dataset& d = *cl.data;
    HM_CHECK(static_cast<index_t>(cl.w.size()) == num_params());
    HM_CHECK(static_cast<index_t>(cl.grad.size()) == num_params());
    HM_CHECK(!cl.batch.empty());
    HM_CHECK(d.dim() == dim_ && d.num_classes == classes_);
    const auto m = static_cast<index_t>(cl.batch.size());

    if (m < kBatchGemmMinRows) {
      if (!scratch.inner) scratch.inner = make_workspace();
      const scalar_t loss_g =
          loss_and_grad(cl.w, d, cl.batch, cl.grad, *scratch.inner);
      if (!losses.empty()) losses[g] = loss_g;
      continue;
    }

    // Logits per gathered row with the oracle's exact reductions: the
    // same per-class dot and the same single bias addition that
    // compute_logits performs (gathered rows are bitwise dataset rows).
    scratch.xb.resize_for_overwrite(m, dim_);
    for (index_t r = 0; r < m; ++r) {
      tensor::copy(d.x.row(cl.batch[static_cast<std::size_t>(r)]),
                   scratch.xb.row(r));
    }
    scratch.logits.resize_for_overwrite(m, classes_);
    for (index_t r = 0; r < m; ++r) {
      VecView row = scratch.logits.row(r);
      for (index_t c = 0; c < classes_; ++c) {
        row[static_cast<std::size_t>(c)] =
            tensor::dot(weight_row(cl.w, dim_, c), scratch.xb.row(r)) +
            bias(cl.w, dim_, classes_, c);
      }
    }

    // Softmax residual coefficients per sample, with the oracle's exact
    // per-element roundings; the bias gradients keep the oracle's literal
    // skip-if-zero accumulation.
    scratch.coeff.resize_for_overwrite(m, classes_);
    VecView bias_grad = cl.grad.subspan(
        static_cast<std::size_t>(classes_ * dim_),
        static_cast<std::size_t>(classes_));
    tensor::set_zero(bias_grad);
    const scalar_t inv_m = scalar_t{1} / static_cast<scalar_t>(m);
    scalar_t total_loss = 0;
    for (index_t r = 0; r < m; ++r) {
      const index_t i = cl.batch[static_cast<std::size_t>(r)];
      const index_t label = d.y[static_cast<std::size_t>(i)];
      ConstVecView logits = scratch.logits.row(r);
      const scalar_t lse = tensor::log_sum_exp(logits);
      total_loss += lse - logits[static_cast<std::size_t>(label)];
      VecView crow = scratch.coeff.row(r);
      for (index_t c = 0; c < classes_; ++c) {
        const scalar_t p =
            std::exp(logits[static_cast<std::size_t>(c)] - lse);
        const scalar_t coeff = (p - (c == label ? 1 : 0)) * inv_m;
        crow[static_cast<std::size_t>(c)] = coeff;
        if (coeff == 0) continue;
        bias_grad[static_cast<std::size_t>(c)] += coeff;
      }
    }
    if (!losses.empty()) losses[g] = total_loss * inv_m;

    // Weight gradient as one gemm_tn: grad_W(c, j) folds coeff(r, c) *
    // x(r, j) over samples in increasing r — the same multiply-then-add
    // roundings, in the same order, as the oracle's per-sample axpy
    // accumulation from a zeroed gradient. The oracle's skip of
    // zero-coefficient samples is also preserved bitwise: adding
    // coeff * x = ±0 to a finite accumulator leaves it unchanged, and a
    // +0 accumulator stays +0 under round-to-nearest.
    tensor::gemm_tn(scratch.coeff, scratch.xb,
                    tensor::MatView(cl.grad.data(), classes_, dim_));
  }
}

scalar_t SoftmaxRegression::loss(ConstVecView w, const data::Dataset& d,
                                 std::span<const index_t> batch,
                                 Workspace& ws) const {
  HM_CHECK(!batch.empty());
  // Single-job case of the stacked sweep below (which re-checks shapes).
  const LossJob job{w, &d, batch};
  scalar_t out = 0;
  loss_many(std::span<const LossJob>(&job, 1), std::span<scalar_t>(&out, 1),
            ws);
  return out;
}

void SoftmaxRegression::loss_many(std::span<const LossJob> jobs,
                                  std::span<scalar_t> losses,
                                  Workspace& ws) const {
  HM_CHECK(losses.size() == jobs.size());
  auto& scratch = static_cast<SoftmaxWorkspace&>(ws);
  // Blocked evaluation: one fused gemm per row block computes every
  // sample's logits at full kernel throughput, and blocks span job
  // boundaries within a shared-w run so small jobs amortize the weight
  // pack. The gemm_nt_fma rounding differs from compute_logits; the
  // result is still deterministic for any thread count and SIMD level,
  // and evaluation is shared by the batched and per-client training
  // paths, so their bit-equality is unaffected. Per job the value is
  // bit-identical to a standalone loss() call: each row's logits do not
  // depend on its block, and each job's rows accumulate in row order.
  std::size_t g = 0;
  while (g < jobs.size()) {
    std::size_t run_end = g + 1;
    while (run_end < jobs.size() &&
           jobs[run_end].w.data() == jobs[g].w.data() &&
           jobs[run_end].w.size() == jobs[g].w.size()) {
      ++run_end;
    }
    ConstVecView w = jobs[g].w;
    HM_CHECK(static_cast<index_t>(w.size()) == num_params());
    const tensor::ConstMatView wm(w.data(), classes_, dim_);
    for (std::size_t j = g; j < run_end; ++j) {
      HM_CHECK(!jobs[j].batch.empty());
      HM_CHECK(jobs[j].data->dim() == dim_);
      losses[j] = 0;
    }
    // The weight pack is only ~classes*dim doubles (63 KB for the paper
    // softmax), so in-place views beat gathering for any moderately long
    // consecutive run — the full-shard evaluators pay zero row copies.
    detail::EvalBlockCursor cursor(jobs, g, run_end, kEvalBlock,
                                   /*min_view_rows=*/32);
    while (!cursor.done()) {
      std::size_t wj = cursor.job();
      index_t wr = cursor.row();
      const tensor::ConstMatView xb = cursor.next(scratch.xb);
      const index_t mb = xb.rows();
      scratch.logit_rows.resize_for_overwrite(mb, classes_);
      tensor::gemm_nt_fma(xb, wm, scratch.logit_rows);
      for (index_t r = 0; r < mb; ++r) {
        VecView row = scratch.logit_rows.row(r);
        for (index_t c = 0; c < classes_; ++c) {
          row[static_cast<std::size_t>(c)] += bias(w, dim_, classes_, c);
        }
        const scalar_t lse = tensor::log_sum_exp(row);
        const LossJob& job = jobs[wj];
        const index_t label = job.data->y[static_cast<std::size_t>(
            job.batch[static_cast<std::size_t>(wr)])];
        losses[wj] += lse - row[static_cast<std::size_t>(label)];
        detail::advance(jobs, wj, wr);
      }
    }
    for (std::size_t j = g; j < run_end; ++j) {
      losses[j] /= static_cast<scalar_t>(jobs[j].batch.size());
    }
    g = run_end;
  }
}

void SoftmaxRegression::predict(ConstVecView w, const data::Dataset& d,
                                std::span<const index_t> batch,
                                std::span<index_t> out, Workspace& ws) const {
  HM_CHECK(batch.size() == out.size());
  auto& scratch = static_cast<SoftmaxWorkspace&>(ws);
  // Same blocked gemm_nt_fma sweep as loss(); argmax runs over the
  // deterministic fused logits.
  const tensor::ConstMatView wm(w.data(), classes_, dim_);
  const auto n = static_cast<index_t>(batch.size());
  for (index_t r0 = 0; r0 < n; r0 += kEvalBlock) {
    const index_t mb = std::min(kEvalBlock, n - r0);
    const tensor::ConstMatView xb =
        gather_block(d, batch, r0, mb, scratch.xb);
    scratch.logit_rows.resize_for_overwrite(mb, classes_);
    tensor::gemm_nt_fma(xb, wm, scratch.logit_rows);
    for (index_t r = 0; r < mb; ++r) {
      VecView row = scratch.logit_rows.row(r);
      for (index_t c = 0; c < classes_; ++c) {
        row[static_cast<std::size_t>(c)] += bias(w, dim_, classes_, c);
      }
      out[static_cast<std::size_t>(r0 + r)] = tensor::argmax(row);
    }
  }
}

}  // namespace hm::nn
