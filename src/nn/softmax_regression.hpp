// Multinomial logistic regression (softmax regression). The convex model
// of the paper's §6.1 experiments; cross-entropy composed with a linear
// map is convex in (W, b).
//
// Parameter layout: W (classes x dim, row-major) followed by b (classes).
#pragma once

#include "nn/model.hpp"

namespace hm::nn {

class SoftmaxRegression final : public Model {
 public:
  SoftmaxRegression(index_t input_dim, index_t num_classes);

  index_t num_params() const override { return (dim_ + 1) * classes_; }
  index_t num_classes() const override { return classes_; }
  index_t input_dim() const override { return dim_; }
  bool is_convex() const override { return true; }

  std::unique_ptr<Workspace> make_workspace() const override;
  void init_params(VecView w, rng::Xoshiro256& gen) const override;
  scalar_t loss_and_grad(ConstVecView w, const data::Dataset& d,
                         std::span<const index_t> batch, VecView grad,
                         Workspace& ws) const override;
  scalar_t loss(ConstVecView w, const data::Dataset& d,
                std::span<const index_t> batch, Workspace& ws) const override;
  void loss_many(std::span<const LossJob> jobs, std::span<scalar_t> losses,
                 Workspace& ws) const override;
  void predict(ConstVecView w, const data::Dataset& d,
               std::span<const index_t> batch, std::span<index_t> out,
               Workspace& ws) const override;

  /// Batched path: per client, all logit rows come from one dot_nt sweep
  /// (paired dot2 passes over the gathered batch) instead of per-sample
  /// per-class dot calls; bit-identical per client to loss_and_grad.
  std::unique_ptr<BatchWorkspace> make_batch_workspace() const override;
  void loss_and_grad_batch(std::span<const BatchClientRef> clients,
                           std::span<scalar_t> losses,
                           BatchWorkspace& ws) const override;

 private:
  index_t dim_;
  index_t classes_;
};

}  // namespace hm::nn
