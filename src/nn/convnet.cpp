#include "nn/convnet.hpp"

#include <cmath>

#include "core/check.hpp"
#include "tensor/activations.hpp"
#include "tensor/vecops.hpp"

namespace hm::nn {

namespace {

struct ConvWorkspace final : Workspace {
  std::vector<scalar_t> features;  // post-ReLU feature map, one sample
  std::vector<scalar_t> logits;
  std::vector<scalar_t> dlogits;
  std::vector<scalar_t> dfeatures;
};

}  // namespace

ConvNet::ConvNet(index_t image_side, index_t filters, index_t kernel,
                 index_t num_classes)
    : side_(image_side),
      filters_(filters),
      kernel_(kernel),
      classes_(num_classes) {
  HM_CHECK(image_side > 0 && filters > 0 && num_classes >= 2);
  HM_CHECK_MSG(0 < kernel && kernel <= image_side,
               "kernel " << kernel << " exceeds image side " << image_side);
  total_params_ = dense_b_offset() + classes_;
}

std::unique_ptr<Workspace> ConvNet::make_workspace() const {
  return std::make_unique<ConvWorkspace>();
}

void ConvNet::init_params(VecView w, rng::Xoshiro256& gen) const {
  HM_CHECK(static_cast<index_t>(w.size()) == num_params());
  tensor::set_zero(w);
  // He init over the conv receptive field and the dense fan-in.
  const scalar_t conv_std =
      std::sqrt(scalar_t{2} / static_cast<scalar_t>(kernel_ * kernel_));
  for (index_t i = 0; i < conv_b_offset(); ++i) {
    w[static_cast<std::size_t>(i)] = gen.normal(0.0, conv_std);
  }
  const scalar_t dense_std =
      std::sqrt(scalar_t{2} / static_cast<scalar_t>(feature_dim()));
  for (index_t i = dense_w_offset(); i < dense_b_offset(); ++i) {
    w[static_cast<std::size_t>(i)] = gen.normal(0.0, dense_std);
  }
}

void ConvNet::forward_sample(ConstVecView w, ConstVecView x,
                             std::vector<scalar_t>& features,
                             std::vector<scalar_t>& logits) const {
  const index_t fs = feature_side();
  features.assign(static_cast<std::size_t>(feature_dim()), 0);
  // Convolution (valid, stride 1) + bias + ReLU.
  for (index_t c = 0; c < filters_; ++c) {
    const scalar_t* filter =
        w.data() + conv_w_offset() + c * kernel_ * kernel_;
    const scalar_t bias = w[static_cast<std::size_t>(conv_b_offset() + c)];
    for (index_t r = 0; r < fs; ++r) {
      for (index_t col = 0; col < fs; ++col) {
        scalar_t acc = bias;
        for (index_t kr = 0; kr < kernel_; ++kr) {
          for (index_t kc = 0; kc < kernel_; ++kc) {
            acc += filter[kr * kernel_ + kc] *
                   x[static_cast<std::size_t>((r + kr) * side_ + col + kc)];
          }
        }
        features[static_cast<std::size_t>((c * fs + r) * fs + col)] =
            acc > 0 ? acc : 0;
      }
    }
  }
  // Dense head.
  logits.assign(static_cast<std::size_t>(classes_), 0);
  for (index_t cls = 0; cls < classes_; ++cls) {
    const scalar_t* row = w.data() + dense_w_offset() + cls * feature_dim();
    scalar_t acc = w[static_cast<std::size_t>(dense_b_offset() + cls)];
    for (index_t j = 0; j < feature_dim(); ++j) {
      acc += row[j] * features[static_cast<std::size_t>(j)];
    }
    logits[static_cast<std::size_t>(cls)] = acc;
  }
}

scalar_t ConvNet::loss_and_grad(ConstVecView w, const data::Dataset& d,
                                std::span<const index_t> batch, VecView grad,
                                Workspace& ws) const {
  HM_CHECK(static_cast<index_t>(w.size()) == num_params());
  HM_CHECK(static_cast<index_t>(grad.size()) == num_params());
  HM_CHECK(!batch.empty());
  HM_CHECK(d.dim() == input_dim() && d.num_classes == classes_);
  auto& scratch = static_cast<ConvWorkspace&>(ws);
  tensor::set_zero(grad);
  const scalar_t inv_m = scalar_t{1} / static_cast<scalar_t>(batch.size());
  const index_t fs = feature_side();

  scalar_t total_loss = 0;
  for (const index_t i : batch) {
    ConstVecView x = d.x.row(i);
    const index_t label = d.y[static_cast<std::size_t>(i)];
    forward_sample(w, x, scratch.features, scratch.logits);
    const scalar_t lse =
        tensor::log_sum_exp(tensor::ConstVecView(scratch.logits));
    total_loss += lse - scratch.logits[static_cast<std::size_t>(label)];

    // dL/dlogits.
    scratch.dlogits.resize(static_cast<std::size_t>(classes_));
    for (index_t cls = 0; cls < classes_; ++cls) {
      const scalar_t p =
          std::exp(scratch.logits[static_cast<std::size_t>(cls)] - lse);
      scratch.dlogits[static_cast<std::size_t>(cls)] =
          (p - (cls == label ? 1 : 0)) * inv_m;
    }
    // Dense grads + back to features.
    scratch.dfeatures.assign(static_cast<std::size_t>(feature_dim()), 0);
    for (index_t cls = 0; cls < classes_; ++cls) {
      const scalar_t dl = scratch.dlogits[static_cast<std::size_t>(cls)];
      grad[static_cast<std::size_t>(dense_b_offset() + cls)] += dl;
      if (dl == 0) continue;
      scalar_t* grow =
          grad.data() + dense_w_offset() + cls * feature_dim();
      const scalar_t* wrow =
          w.data() + dense_w_offset() + cls * feature_dim();
      for (index_t j = 0; j < feature_dim(); ++j) {
        grow[j] += dl * scratch.features[static_cast<std::size_t>(j)];
        scratch.dfeatures[static_cast<std::size_t>(j)] += dl * wrow[j];
      }
    }
    // ReLU mask, then conv grads.
    for (index_t j = 0; j < feature_dim(); ++j) {
      if (scratch.features[static_cast<std::size_t>(j)] <= 0) {
        scratch.dfeatures[static_cast<std::size_t>(j)] = 0;
      }
    }
    for (index_t c = 0; c < filters_; ++c) {
      scalar_t* gfilter =
          grad.data() + conv_w_offset() + c * kernel_ * kernel_;
      scalar_t& gbias = grad[static_cast<std::size_t>(conv_b_offset() + c)];
      for (index_t r = 0; r < fs; ++r) {
        for (index_t col = 0; col < fs; ++col) {
          const scalar_t df = scratch.dfeatures[static_cast<std::size_t>(
              (c * fs + r) * fs + col)];
          if (df == 0) continue;
          gbias += df;
          for (index_t kr = 0; kr < kernel_; ++kr) {
            for (index_t kc = 0; kc < kernel_; ++kc) {
              gfilter[kr * kernel_ + kc] +=
                  df *
                  x[static_cast<std::size_t>((r + kr) * side_ + col + kc)];
            }
          }
        }
      }
    }
  }
  return total_loss * inv_m;
}

scalar_t ConvNet::loss(ConstVecView w, const data::Dataset& d,
                       std::span<const index_t> batch, Workspace& ws) const {
  HM_CHECK(static_cast<index_t>(w.size()) == num_params());
  HM_CHECK(!batch.empty());
  auto& scratch = static_cast<ConvWorkspace&>(ws);
  scalar_t total_loss = 0;
  for (const index_t i : batch) {
    forward_sample(w, d.x.row(i), scratch.features, scratch.logits);
    const scalar_t lse =
        tensor::log_sum_exp(tensor::ConstVecView(scratch.logits));
    total_loss += lse - scratch.logits[static_cast<std::size_t>(
                            d.y[static_cast<std::size_t>(i)])];
  }
  return total_loss / static_cast<scalar_t>(batch.size());
}

void ConvNet::predict(ConstVecView w, const data::Dataset& d,
                      std::span<const index_t> batch, std::span<index_t> out,
                      Workspace& ws) const {
  HM_CHECK(batch.size() == out.size());
  auto& scratch = static_cast<ConvWorkspace&>(ws);
  for (std::size_t r = 0; r < batch.size(); ++r) {
    forward_sample(w, d.x.row(batch[r]), scratch.features, scratch.logits);
    out[r] = tensor::argmax(tensor::ConstVecView(scratch.logits));
  }
}

}  // namespace hm::nn
