#include "nn/grad_check.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "core/check.hpp"

namespace hm::nn {

GradCheckResult check_gradients(const Model& model, ConstVecView w,
                                const data::Dataset& d,
                                std::span<const index_t> batch,
                                scalar_t epsilon, index_t max_coords) {
  HM_CHECK(epsilon > 0);
  const index_t n = model.num_params();
  HM_CHECK(static_cast<index_t>(w.size()) == n);
  auto ws = model.make_workspace();

  std::vector<scalar_t> analytic(static_cast<std::size_t>(n));
  model.loss_and_grad(w, d, batch, analytic, *ws);

  std::vector<scalar_t> probe(w.begin(), w.end());
  const index_t stride =
      max_coords <= 0 ? 1 : std::max<index_t>(1, n / max_coords);

  GradCheckResult result;
  for (index_t j = 0; j < n; j += stride) {
    const scalar_t saved = probe[static_cast<std::size_t>(j)];
    probe[static_cast<std::size_t>(j)] = saved + epsilon;
    const scalar_t loss_hi = model.loss(probe, d, batch, *ws);
    probe[static_cast<std::size_t>(j)] = saved - epsilon;
    const scalar_t loss_lo = model.loss(probe, d, batch, *ws);
    probe[static_cast<std::size_t>(j)] = saved;

    const scalar_t numeric = (loss_hi - loss_lo) / (2 * epsilon);
    const scalar_t abs_err =
        std::abs(numeric - analytic[static_cast<std::size_t>(j)]);
    const scalar_t denom = std::max<scalar_t>(
        {std::abs(numeric), std::abs(analytic[static_cast<std::size_t>(j)]),
         scalar_t{1e-8}});
    result.max_abs_error = std::max(result.max_abs_error, abs_err);
    result.max_rel_error = std::max(result.max_rel_error, abs_err / denom);
    ++result.coords_checked;
  }
  return result;
}

}  // namespace hm::nn
