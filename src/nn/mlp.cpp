#include "nn/mlp.hpp"

#include <cmath>

#include "core/check.hpp"
#include "tensor/activations.hpp"
#include "tensor/gemm.hpp"
#include "tensor/vecops.hpp"

namespace hm::nn {

namespace {

struct MlpWorkspace final : Workspace {
  std::vector<tensor::Matrix> activations;  // a_0 .. a_L (a_0 = inputs)
  std::vector<tensor::Matrix> deltas;       // d_1 .. d_L (indexed l-1)
};

/// Gather batch rows into a contiguous activation matrix.
void gather_batch(const data::Dataset& d, std::span<const index_t> batch,
                  tensor::Matrix& out) {
  out.resize(static_cast<index_t>(batch.size()), d.dim());
  for (index_t r = 0; r < static_cast<index_t>(batch.size()); ++r) {
    tensor::copy(d.x.row(batch[static_cast<std::size_t>(r)]), out.row(r));
  }
}

void add_bias_rows(tensor::MatView m, tensor::ConstVecView bias) {
  for (index_t r = 0; r < m.rows(); ++r) tensor::axpy(1.0, bias, m.row(r));
}

}  // namespace

Mlp::Mlp(std::vector<index_t> layer_dims) : dims_(std::move(layer_dims)) {
  HM_CHECK_MSG(dims_.size() >= 2, "need at least {input, output} dims");
  for (const index_t d : dims_) HM_CHECK(d > 0);
  HM_CHECK(dims_.back() >= 2);
  index_t offset = 0;
  for (index_t l = 0; l < num_layers(); ++l) {
    const index_t in = dims_[static_cast<std::size_t>(l)];
    const index_t out = dims_[static_cast<std::size_t>(l) + 1];
    w_offsets_.push_back(offset);
    offset += in * out;
    b_offsets_.push_back(offset);
    offset += out;
  }
  total_params_ = offset;
}

tensor::ConstMatView Mlp::weights(ConstVecView w, index_t layer) const {
  const index_t in = dims_[static_cast<std::size_t>(layer)];
  const index_t out = dims_[static_cast<std::size_t>(layer) + 1];
  return tensor::ConstMatView(
      w.data() + w_offsets_[static_cast<std::size_t>(layer)], out, in);
}

tensor::MatView Mlp::weights(VecView w, index_t layer) const {
  const index_t in = dims_[static_cast<std::size_t>(layer)];
  const index_t out = dims_[static_cast<std::size_t>(layer) + 1];
  return tensor::MatView(
      w.data() + w_offsets_[static_cast<std::size_t>(layer)], out, in);
}

ConstVecView Mlp::biases(ConstVecView w, index_t layer) const {
  const index_t out = dims_[static_cast<std::size_t>(layer) + 1];
  return w.subspan(
      static_cast<std::size_t>(b_offsets_[static_cast<std::size_t>(layer)]),
      static_cast<std::size_t>(out));
}

VecView Mlp::biases(VecView w, index_t layer) const {
  const index_t out = dims_[static_cast<std::size_t>(layer) + 1];
  return w.subspan(
      static_cast<std::size_t>(b_offsets_[static_cast<std::size_t>(layer)]),
      static_cast<std::size_t>(out));
}

std::unique_ptr<Workspace> Mlp::make_workspace() const {
  auto ws = std::make_unique<MlpWorkspace>();
  ws->activations.resize(static_cast<std::size_t>(num_layers()) + 1);
  ws->deltas.resize(static_cast<std::size_t>(num_layers()));
  return ws;
}

void Mlp::init_params(VecView w, rng::Xoshiro256& gen) const {
  HM_CHECK(static_cast<index_t>(w.size()) == num_params());
  // He initialization for ReLU hidden layers; biases start at zero.
  for (index_t l = 0; l < num_layers(); ++l) {
    const index_t in = dims_[static_cast<std::size_t>(l)];
    const scalar_t std_dev =
        std::sqrt(scalar_t{2} / static_cast<scalar_t>(in));
    auto wm = weights(w, l);
    for (auto& v : wm.flat()) v = gen.normal(0.0, std_dev);
    tensor::set_zero(biases(w, l));
  }
}

scalar_t Mlp::loss_and_grad(ConstVecView w, const data::Dataset& d,
                            std::span<const index_t> batch, VecView grad,
                            Workspace& ws) const {
  HM_CHECK(static_cast<index_t>(w.size()) == num_params());
  HM_CHECK(static_cast<index_t>(grad.size()) == num_params());
  HM_CHECK(!batch.empty());
  HM_CHECK(d.dim() == input_dim() && d.num_classes == num_classes());
  auto& scratch = static_cast<MlpWorkspace&>(ws);
  const auto m = static_cast<index_t>(batch.size());
  const index_t layers = num_layers();

  // Forward: a_0 = X; z_l = a_{l-1} W_l^T + b_l; a_l = relu(z_l) except
  // the output layer, which stays as logits.
  gather_batch(d, batch, scratch.activations[0]);
  for (index_t l = 0; l < layers; ++l) {
    auto& out = scratch.activations[static_cast<std::size_t>(l) + 1];
    out.resize(m, dims_[static_cast<std::size_t>(l) + 1]);
    tensor::gemm_nt(scratch.activations[static_cast<std::size_t>(l)],
                    weights(w, l), out);
    add_bias_rows(out, biases(w, l));
    if (l + 1 < layers) tensor::relu(out.flat());
  }

  // Loss + output delta: d_L = (softmax - onehot) / m.
  auto& logits = scratch.activations[static_cast<std::size_t>(layers)];
  scalar_t total_loss = 0;
  auto& delta_out = scratch.deltas[static_cast<std::size_t>(layers) - 1];
  delta_out.resize(m, num_classes());
  const scalar_t inv_m = scalar_t{1} / static_cast<scalar_t>(m);
  for (index_t r = 0; r < m; ++r) {
    const index_t label =
        d.y[static_cast<std::size_t>(batch[static_cast<std::size_t>(r)])];
    ConstVecView row = logits.row(r);
    const scalar_t lse = tensor::log_sum_exp(row);
    total_loss += lse - row[static_cast<std::size_t>(label)];
    VecView drow = delta_out.row(r);
    for (index_t c = 0; c < num_classes(); ++c) {
      const scalar_t p = std::exp(row[static_cast<std::size_t>(c)] - lse);
      drow[static_cast<std::size_t>(c)] =
          (p - (c == label ? 1 : 0)) * inv_m;
    }
  }

  // Backward: gradW_l = d_l^T a_{l-1}; gradb_l = colsum d_l;
  // d_{l-1} = (d_l W_l) ⊙ relu'(a_{l-1}).
  for (index_t l = layers - 1; l >= 0; --l) {
    const auto& delta = scratch.deltas[static_cast<std::size_t>(l)];
    const auto& a_prev = scratch.activations[static_cast<std::size_t>(l)];
    tensor::gemm_tn(delta, a_prev, weights(grad, l));
    VecView gb = biases(grad, l);
    tensor::set_zero(gb);
    for (index_t r = 0; r < m; ++r) tensor::axpy(1.0, delta.row(r), gb);
    if (l > 0) {
      auto& delta_prev = scratch.deltas[static_cast<std::size_t>(l) - 1];
      delta_prev.resize(m, dims_[static_cast<std::size_t>(l)]);
      tensor::gemm(delta, weights(w, l), delta_prev);
      tensor::relu_backward(a_prev.flat(), delta_prev.flat());
    }
  }
  return total_loss * inv_m;
}

scalar_t Mlp::loss(ConstVecView w, const data::Dataset& d,
                   std::span<const index_t> batch, Workspace& ws) const {
  HM_CHECK(static_cast<index_t>(w.size()) == num_params());
  HM_CHECK(!batch.empty());
  auto& scratch = static_cast<MlpWorkspace&>(ws);
  const auto m = static_cast<index_t>(batch.size());
  const index_t layers = num_layers();
  gather_batch(d, batch, scratch.activations[0]);
  for (index_t l = 0; l < layers; ++l) {
    auto& out = scratch.activations[static_cast<std::size_t>(l) + 1];
    out.resize(m, dims_[static_cast<std::size_t>(l) + 1]);
    tensor::gemm_nt(scratch.activations[static_cast<std::size_t>(l)],
                    weights(w, l), out);
    add_bias_rows(out, biases(w, l));
    if (l + 1 < layers) tensor::relu(out.flat());
  }
  const auto& logits = scratch.activations[static_cast<std::size_t>(layers)];
  scalar_t total_loss = 0;
  for (index_t r = 0; r < m; ++r) {
    ConstVecView row = logits.row(r);
    const index_t label =
        d.y[static_cast<std::size_t>(batch[static_cast<std::size_t>(r)])];
    total_loss +=
        tensor::log_sum_exp(row) - row[static_cast<std::size_t>(label)];
  }
  return total_loss / static_cast<scalar_t>(m);
}

void Mlp::predict(ConstVecView w, const data::Dataset& d,
                  std::span<const index_t> batch, std::span<index_t> out,
                  Workspace& ws) const {
  HM_CHECK(batch.size() == out.size());
  auto& scratch = static_cast<MlpWorkspace&>(ws);
  const auto m = static_cast<index_t>(batch.size());
  const index_t layers = num_layers();
  gather_batch(d, batch, scratch.activations[0]);
  for (index_t l = 0; l < layers; ++l) {
    auto& act = scratch.activations[static_cast<std::size_t>(l) + 1];
    act.resize(m, dims_[static_cast<std::size_t>(l) + 1]);
    tensor::gemm_nt(scratch.activations[static_cast<std::size_t>(l)],
                    weights(w, l), act);
    add_bias_rows(act, biases(w, l));
    if (l + 1 < layers) tensor::relu(act.flat());
  }
  const auto& logits = scratch.activations[static_cast<std::size_t>(layers)];
  for (index_t r = 0; r < m; ++r) {
    out[static_cast<std::size_t>(r)] = tensor::argmax(logits.row(r));
  }
}

Mlp make_paper_mlp(index_t input_dim, index_t num_classes) {
  return Mlp({input_dim, 300, 100, num_classes});
}

}  // namespace hm::nn
