#include "nn/mlp.hpp"

#include <cmath>
#include <utility>

#include "core/check.hpp"
#include "nn/eval_sweep.hpp"
#include "tensor/activations.hpp"
#include "tensor/gemm.hpp"
#include "tensor/vecops.hpp"

namespace hm::nn {

namespace {

struct MlpWorkspace final : Workspace {
  std::vector<tensor::Matrix> activations;  // a_0 .. a_L (a_0 = inputs)
  std::vector<tensor::Matrix> deltas;       // d_1 .. d_L (indexed l-1)
};

/// Stacked panels for the batched multi-client path: client g's batch
/// rows occupy rows [offsets[g], offsets[g+1]) of every panel, so each
/// layer's per-client GEMMs become one gemm_batch over row blocks.
struct MlpBatchWorkspace final : BatchWorkspace {
  std::vector<tensor::Matrix> activations;  // stacked a_0 .. a_L
  std::vector<tensor::Matrix> deltas;       // stacked d_1 .. d_L
  std::vector<index_t> offsets;             // per-client row offsets (+total)
  std::vector<tensor::GemmGroup> groups;    // reused per gemm_batch call
};

/// Row-block size for the stacked evaluation sweep: large enough that the
/// per-layer weight packs (W1 alone is ~1.9 MB for the paper MLP) are
/// amortized over many rows, small enough that the activations of one
/// block stay cache-friendly.
constexpr index_t kEvalBlock = 512;

/// Mutable view of one client's row block inside a stacked panel.
tensor::MatView block(tensor::Matrix& m, index_t row0, index_t nrows) {
  return tensor::MatView(m.data() + row0 * m.cols(), nrows, m.cols());
}
tensor::ConstMatView block(const tensor::Matrix& m, index_t row0,
                           index_t nrows) {
  return tensor::ConstMatView(m.data() + row0 * m.cols(), nrows, m.cols());
}

/// Gather batch rows into a contiguous activation matrix.
void gather_batch(const data::Dataset& d, std::span<const index_t> batch,
                  tensor::Matrix& out) {
  out.resize_for_overwrite(static_cast<index_t>(batch.size()), d.dim());
  for (index_t r = 0; r < static_cast<index_t>(batch.size()); ++r) {
    tensor::copy(d.x.row(batch[static_cast<std::size_t>(r)]), out.row(r));
  }
}

void add_bias_rows(tensor::MatView m, tensor::ConstVecView bias) {
  for (index_t r = 0; r < m.rows(); ++r) tensor::axpy(1.0, bias, m.row(r));
}

}  // namespace

Mlp::Mlp(std::vector<index_t> layer_dims) : dims_(std::move(layer_dims)) {
  HM_CHECK_MSG(dims_.size() >= 2, "need at least {input, output} dims");
  for (const index_t d : dims_) HM_CHECK(d > 0);
  HM_CHECK(dims_.back() >= 2);
  index_t offset = 0;
  for (index_t l = 0; l < num_layers(); ++l) {
    const index_t in = dims_[static_cast<std::size_t>(l)];
    const index_t out = dims_[static_cast<std::size_t>(l) + 1];
    w_offsets_.push_back(offset);
    offset += in * out;
    b_offsets_.push_back(offset);
    offset += out;
  }
  total_params_ = offset;
}

tensor::ConstMatView Mlp::weights(ConstVecView w, index_t layer) const {
  const index_t in = dims_[static_cast<std::size_t>(layer)];
  const index_t out = dims_[static_cast<std::size_t>(layer) + 1];
  return tensor::ConstMatView(
      w.data() + w_offsets_[static_cast<std::size_t>(layer)], out, in);
}

tensor::MatView Mlp::weights(VecView w, index_t layer) const {
  const index_t in = dims_[static_cast<std::size_t>(layer)];
  const index_t out = dims_[static_cast<std::size_t>(layer) + 1];
  return tensor::MatView(
      w.data() + w_offsets_[static_cast<std::size_t>(layer)], out, in);
}

ConstVecView Mlp::biases(ConstVecView w, index_t layer) const {
  const index_t out = dims_[static_cast<std::size_t>(layer) + 1];
  return w.subspan(
      static_cast<std::size_t>(b_offsets_[static_cast<std::size_t>(layer)]),
      static_cast<std::size_t>(out));
}

VecView Mlp::biases(VecView w, index_t layer) const {
  const index_t out = dims_[static_cast<std::size_t>(layer) + 1];
  return w.subspan(
      static_cast<std::size_t>(b_offsets_[static_cast<std::size_t>(layer)]),
      static_cast<std::size_t>(out));
}

std::unique_ptr<Workspace> Mlp::make_workspace() const {
  auto ws = std::make_unique<MlpWorkspace>();
  ws->activations.resize(static_cast<std::size_t>(num_layers()) + 1);
  ws->deltas.resize(static_cast<std::size_t>(num_layers()));
  return ws;
}

void Mlp::init_params(VecView w, rng::Xoshiro256& gen) const {
  HM_CHECK(static_cast<index_t>(w.size()) == num_params());
  // He initialization for ReLU hidden layers; biases start at zero.
  for (index_t l = 0; l < num_layers(); ++l) {
    const index_t in = dims_[static_cast<std::size_t>(l)];
    const scalar_t std_dev =
        std::sqrt(scalar_t{2} / static_cast<scalar_t>(in));
    auto wm = weights(w, l);
    for (auto& v : wm.flat()) v = gen.normal(0.0, std_dev);
    tensor::set_zero(biases(w, l));
  }
}

scalar_t Mlp::loss_and_grad(ConstVecView w, const data::Dataset& d,
                            std::span<const index_t> batch, VecView grad,
                            Workspace& ws) const {
  HM_CHECK(static_cast<index_t>(w.size()) == num_params());
  HM_CHECK(static_cast<index_t>(grad.size()) == num_params());
  HM_CHECK(!batch.empty());
  HM_CHECK(d.dim() == input_dim() && d.num_classes == num_classes());
  auto& scratch = static_cast<MlpWorkspace&>(ws);
  const auto m = static_cast<index_t>(batch.size());
  const index_t layers = num_layers();

  // Forward: a_0 = X; z_l = a_{l-1} W_l^T + b_l; a_l = relu(z_l) except
  // the output layer, which stays as logits.
  gather_batch(d, batch, scratch.activations[0]);
  for (index_t l = 0; l < layers; ++l) {
    auto& out = scratch.activations[static_cast<std::size_t>(l) + 1];
    out.resize_for_overwrite(m, dims_[static_cast<std::size_t>(l) + 1]);
    tensor::gemm_nt(scratch.activations[static_cast<std::size_t>(l)],
                    weights(w, l), out);
    add_bias_rows(out, biases(w, l));
    if (l + 1 < layers) tensor::relu(out.flat());
  }

  // Loss + output delta: d_L = (softmax - onehot) / m.
  auto& logits = scratch.activations[static_cast<std::size_t>(layers)];
  scalar_t total_loss = 0;
  auto& delta_out = scratch.deltas[static_cast<std::size_t>(layers) - 1];
  delta_out.resize_for_overwrite(m, num_classes());
  const scalar_t inv_m = scalar_t{1} / static_cast<scalar_t>(m);
  for (index_t r = 0; r < m; ++r) {
    const index_t label =
        d.y[static_cast<std::size_t>(batch[static_cast<std::size_t>(r)])];
    ConstVecView row = logits.row(r);
    const scalar_t lse = tensor::log_sum_exp(row);
    total_loss += lse - row[static_cast<std::size_t>(label)];
    VecView drow = delta_out.row(r);
    for (index_t c = 0; c < num_classes(); ++c) {
      const scalar_t p = std::exp(row[static_cast<std::size_t>(c)] - lse);
      drow[static_cast<std::size_t>(c)] =
          (p - (c == label ? 1 : 0)) * inv_m;
    }
  }

  // Backward: gradW_l = d_l^T a_{l-1}; gradb_l = colsum d_l;
  // d_{l-1} = (d_l W_l) ⊙ relu'(a_{l-1}).
  for (index_t l = layers - 1; l >= 0; --l) {
    const auto& delta = scratch.deltas[static_cast<std::size_t>(l)];
    const auto& a_prev = scratch.activations[static_cast<std::size_t>(l)];
    tensor::gemm_tn(delta, a_prev, weights(grad, l));
    VecView gb = biases(grad, l);
    tensor::set_zero(gb);
    for (index_t r = 0; r < m; ++r) tensor::axpy(1.0, delta.row(r), gb);
    if (l > 0) {
      auto& delta_prev = scratch.deltas[static_cast<std::size_t>(l) - 1];
      delta_prev.resize_for_overwrite(m, dims_[static_cast<std::size_t>(l)]);
      tensor::gemm(delta, weights(w, l), delta_prev);
      tensor::relu_backward(a_prev.flat(), delta_prev.flat());
    }
  }
  return total_loss * inv_m;
}

scalar_t Mlp::loss(ConstVecView w, const data::Dataset& d,
                   std::span<const index_t> batch, Workspace& ws) const {
  HM_CHECK(!batch.empty());
  // Single-job case of the stacked sweep below (which re-checks shapes).
  const LossJob job{w, &d, batch};
  scalar_t out = 0;
  loss_many(std::span<const LossJob>(&job, 1), std::span<scalar_t>(&out, 1),
            ws);
  return out;
}

void Mlp::loss_many(std::span<const LossJob> jobs, std::span<scalar_t> losses,
                    Workspace& ws) const {
  HM_CHECK(losses.size() == jobs.size());
  auto& scratch = static_cast<MlpWorkspace&>(ws);
  const index_t layers = num_layers();
  // Evaluation-only forward: loss() is never compared bit-for-bit against
  // a gradient oracle, so it may use the fused (one-rounding) gemm_nt_fma
  // family — still deterministic across SIMD variants and pool sizes.
  // Blocks span job boundaries within a shared-w run, so the per-layer
  // weight packs (the dominant cost of scoring many small shards one
  // loss() call at a time) are amortized over kEvalBlock rows. Per job
  // the value is bit-identical to a standalone loss() call: a row's
  // forward pass does not depend on its block, and each job's rows
  // accumulate in row order.
  std::size_t g = 0;
  while (g < jobs.size()) {
    std::size_t run_end = g + 1;
    while (run_end < jobs.size() &&
           jobs[run_end].w.data() == jobs[g].w.data() &&
           jobs[run_end].w.size() == jobs[g].w.size()) {
      ++run_end;
    }
    ConstVecView w = jobs[g].w;
    HM_CHECK(static_cast<index_t>(w.size()) == num_params());
    for (std::size_t j = g; j < run_end; ++j) {
      HM_CHECK(!jobs[j].batch.empty());
      HM_CHECK(jobs[j].data->dim() == input_dim() &&
               jobs[j].data->num_classes == num_classes());
      losses[j] = 0;
    }
    detail::EvalBlockCursor cursor(jobs, g, run_end, kEvalBlock);
    while (!cursor.done()) {
      std::size_t wj = cursor.job();
      index_t wr = cursor.row();
      const tensor::ConstMatView x0 = cursor.next(scratch.activations[0]);
      const index_t mb = x0.rows();
      for (index_t l = 0; l < layers; ++l) {
        auto& out = scratch.activations[static_cast<std::size_t>(l) + 1];
        out.resize_for_overwrite(mb, dims_[static_cast<std::size_t>(l) + 1]);
        const tensor::ConstMatView in =
            l == 0 ? x0
                   : tensor::ConstMatView(
                         scratch.activations[static_cast<std::size_t>(l)]);
        tensor::gemm_nt_fma(in, weights(w, l), out);
        add_bias_rows(out, biases(w, l));
        if (l + 1 < layers) tensor::relu(out.flat());
      }
      const auto& logits =
          scratch.activations[static_cast<std::size_t>(layers)];
      for (index_t r = 0; r < mb; ++r) {
        ConstVecView row = logits.row(r);
        const LossJob& job = jobs[wj];
        const index_t label = job.data->y[static_cast<std::size_t>(
            job.batch[static_cast<std::size_t>(wr)])];
        losses[wj] +=
            tensor::log_sum_exp(row) - row[static_cast<std::size_t>(label)];
        detail::advance(jobs, wj, wr);
      }
    }
    for (std::size_t j = g; j < run_end; ++j) {
      losses[j] /= static_cast<scalar_t>(jobs[j].batch.size());
    }
    g = run_end;
  }
}

void Mlp::predict(ConstVecView w, const data::Dataset& d,
                  std::span<const index_t> batch, std::span<index_t> out,
                  Workspace& ws) const {
  HM_CHECK(batch.size() == out.size());
  auto& scratch = static_cast<MlpWorkspace&>(ws);
  const auto m = static_cast<index_t>(batch.size());
  const index_t layers = num_layers();
  // A fully consecutive batch (the evaluate-everything path) views the
  // dataset rows in place instead of gathering a copy.
  bool consecutive = true;
  for (index_t r = 1; r < m; ++r) {
    if (batch[static_cast<std::size_t>(r)] != batch[0] + r) {
      consecutive = false;
      break;
    }
  }
  tensor::ConstMatView x0(nullptr, 0, 0);
  if (consecutive) {
    x0 = tensor::ConstMatView(d.x.data() + batch[0] * d.dim(), m, d.dim());
  } else {
    gather_batch(d, batch, scratch.activations[0]);
    x0 = scratch.activations[0];
  }
  // Evaluation-only forward: fused kernel, same rationale as loss().
  for (index_t l = 0; l < layers; ++l) {
    auto& act = scratch.activations[static_cast<std::size_t>(l) + 1];
    act.resize_for_overwrite(m, dims_[static_cast<std::size_t>(l) + 1]);
    const tensor::ConstMatView in =
        l == 0 ? x0
               : tensor::ConstMatView(
                     scratch.activations[static_cast<std::size_t>(l)]);
    tensor::gemm_nt_fma(in, weights(w, l), act);
    add_bias_rows(act, biases(w, l));
    if (l + 1 < layers) tensor::relu(act.flat());
  }
  const auto& logits = scratch.activations[static_cast<std::size_t>(layers)];
  for (index_t r = 0; r < m; ++r) {
    out[static_cast<std::size_t>(r)] = tensor::argmax(logits.row(r));
  }
}

std::unique_ptr<BatchWorkspace> Mlp::make_batch_workspace() const {
  auto ws = std::make_unique<MlpBatchWorkspace>();
  ws->activations.resize(static_cast<std::size_t>(num_layers()) + 1);
  ws->deltas.resize(static_cast<std::size_t>(num_layers()));
  return ws;
}

void Mlp::loss_and_grad_batch(std::span<const BatchClientRef> clients,
                              std::span<scalar_t> losses,
                              BatchWorkspace& ws) const {
  HM_CHECK(losses.empty() || losses.size() == clients.size());
  if (clients.empty()) return;
  auto& scratch = static_cast<MlpBatchWorkspace&>(ws);
  const auto num_clients = static_cast<index_t>(clients.size());
  const index_t layers = num_layers();

  scratch.offsets.resize(static_cast<std::size_t>(num_clients) + 1);
  scratch.offsets[0] = 0;
  for (index_t g = 0; g < num_clients; ++g) {
    const BatchClientRef& cl = clients[static_cast<std::size_t>(g)];
    HM_CHECK(static_cast<index_t>(cl.w.size()) == num_params());
    HM_CHECK(static_cast<index_t>(cl.grad.size()) == num_params());
    HM_CHECK(!cl.batch.empty());
    HM_CHECK(cl.data->dim() == input_dim() &&
             cl.data->num_classes == num_classes());
    scratch.offsets[static_cast<std::size_t>(g) + 1] =
        scratch.offsets[static_cast<std::size_t>(g)] +
        static_cast<index_t>(cl.batch.size());
  }
  const index_t total_m = scratch.offsets[static_cast<std::size_t>(num_clients)];

  // Stacked gather: same row copies as the per-client gather_batch.
  auto& a0 = scratch.activations[0];
  a0.resize_for_overwrite(total_m, input_dim());
  for (index_t g = 0; g < num_clients; ++g) {
    const BatchClientRef& cl = clients[static_cast<std::size_t>(g)];
    const index_t off = scratch.offsets[static_cast<std::size_t>(g)];
    for (index_t r = 0; r < static_cast<index_t>(cl.batch.size()); ++r) {
      tensor::copy(cl.data->x.row(cl.batch[static_cast<std::size_t>(r)]),
                   a0.row(off + r));
    }
  }

  // Forward: one gemm_batch per layer over all clients' row blocks. Each
  // group is the same (A, W, C) triple the per-client path hands gemm_nt,
  // so every element's reduction is untouched; bias rows and ReLU are
  // elementwise and run over the stacked panel.
  for (index_t l = 0; l < layers; ++l) {
    auto& out = scratch.activations[static_cast<std::size_t>(l) + 1];
    out.resize_for_overwrite(total_m, dims_[static_cast<std::size_t>(l) + 1]);
    auto& a_prev = scratch.activations[static_cast<std::size_t>(l)];
    scratch.groups.clear();
    for (index_t g = 0; g < num_clients; ++g) {
      const index_t off = scratch.offsets[static_cast<std::size_t>(g)];
      const index_t m_g =
          scratch.offsets[static_cast<std::size_t>(g) + 1] - off;
      scratch.groups.push_back(
          {block(std::as_const(a_prev), off, m_g),
           weights(clients[static_cast<std::size_t>(g)].w, l),
           block(out, off, m_g)});
    }
    tensor::gemm_batch(tensor::GemmKind::kNT, scratch.groups);
    for (index_t g = 0; g < num_clients; ++g) {
      const index_t off = scratch.offsets[static_cast<std::size_t>(g)];
      const index_t m_g =
          scratch.offsets[static_cast<std::size_t>(g) + 1] - off;
      add_bias_rows(block(out, off, m_g),
                    biases(clients[static_cast<std::size_t>(g)].w, l));
    }
    if (l + 1 < layers) tensor::relu(out.flat());
  }

  // Loss + output delta: literal copy of the per-client loop per block.
  auto& logits = scratch.activations[static_cast<std::size_t>(layers)];
  auto& delta_out = scratch.deltas[static_cast<std::size_t>(layers) - 1];
  delta_out.resize_for_overwrite(total_m, num_classes());
  for (index_t g = 0; g < num_clients; ++g) {
    const BatchClientRef& cl = clients[static_cast<std::size_t>(g)];
    const index_t off = scratch.offsets[static_cast<std::size_t>(g)];
    const auto m = static_cast<index_t>(cl.batch.size());
    const scalar_t inv_m = scalar_t{1} / static_cast<scalar_t>(m);
    scalar_t total_loss = 0;
    for (index_t r = 0; r < m; ++r) {
      const index_t label =
          cl.data->y[static_cast<std::size_t>(
              cl.batch[static_cast<std::size_t>(r)])];
      ConstVecView row = logits.row(off + r);
      const scalar_t lse = tensor::log_sum_exp(row);
      total_loss += lse - row[static_cast<std::size_t>(label)];
      VecView drow = delta_out.row(off + r);
      for (index_t c = 0; c < num_classes(); ++c) {
        const scalar_t p = std::exp(row[static_cast<std::size_t>(c)] - lse);
        drow[static_cast<std::size_t>(c)] =
            (p - (c == label ? 1 : 0)) * inv_m;
      }
    }
    if (!losses.empty())
      losses[static_cast<std::size_t>(g)] = total_loss * inv_m;
  }

  // Backward: gemm_batch per layer for the weight grads (TN) and the
  // back-propagated deltas (NN); bias-grad reductions keep the oracle's
  // per-row axpy order, relu' is elementwise over the stacked panel.
  for (index_t l = layers - 1; l >= 0; --l) {
    const auto& delta = scratch.deltas[static_cast<std::size_t>(l)];
    const auto& a_prev = scratch.activations[static_cast<std::size_t>(l)];
    scratch.groups.clear();
    for (index_t g = 0; g < num_clients; ++g) {
      const index_t off = scratch.offsets[static_cast<std::size_t>(g)];
      const index_t m_g =
          scratch.offsets[static_cast<std::size_t>(g) + 1] - off;
      scratch.groups.push_back(
          {block(delta, off, m_g), block(a_prev, off, m_g),
           weights(clients[static_cast<std::size_t>(g)].grad, l)});
    }
    tensor::gemm_batch(tensor::GemmKind::kTN, scratch.groups);
    for (index_t g = 0; g < num_clients; ++g) {
      const index_t off = scratch.offsets[static_cast<std::size_t>(g)];
      const index_t m_g =
          scratch.offsets[static_cast<std::size_t>(g) + 1] - off;
      VecView gb = biases(clients[static_cast<std::size_t>(g)].grad, l);
      tensor::set_zero(gb);
      for (index_t r = 0; r < m_g; ++r)
        tensor::axpy(1.0, delta.row(off + r), gb);
    }
    if (l > 0) {
      auto& delta_prev = scratch.deltas[static_cast<std::size_t>(l) - 1];
      delta_prev.resize_for_overwrite(total_m, dims_[static_cast<std::size_t>(l)]);
      scratch.groups.clear();
      for (index_t g = 0; g < num_clients; ++g) {
        const index_t off = scratch.offsets[static_cast<std::size_t>(g)];
        const index_t m_g =
            scratch.offsets[static_cast<std::size_t>(g) + 1] - off;
        scratch.groups.push_back(
            {block(delta, off, m_g),
             weights(clients[static_cast<std::size_t>(g)].w, l),
             block(delta_prev, off, m_g)});
      }
      tensor::gemm_batch(tensor::GemmKind::kNN, scratch.groups);
      tensor::relu_backward(a_prev.flat(), delta_prev.flat());
    }
  }
}

Mlp make_paper_mlp(index_t input_dim, index_t num_classes) {
  return Mlp({input_dim, 300, 100, num_classes});
}

}  // namespace hm::nn
