#include "nn/linear_regression.hpp"

#include "core/check.hpp"
#include "tensor/gemm.hpp"
#include "tensor/vecops.hpp"

namespace hm::nn {

namespace {

struct LrWorkspace final : Workspace {
  std::vector<scalar_t> scores;
};

struct LrBatchWorkspace final : BatchWorkspace {
  tensor::Matrix xb;      // gathered batch rows of the current client
  tensor::Matrix scores;  // batch x classes
};

inline ConstVecView weight_row(ConstVecView w, index_t dim, index_t c) {
  return w.subspan(static_cast<std::size_t>(c * dim),
                   static_cast<std::size_t>(dim));
}

void compute_scores(ConstVecView w, index_t dim, index_t classes,
                    ConstVecView x, std::vector<scalar_t>& scores) {
  scores.resize(static_cast<std::size_t>(classes));
  for (index_t c = 0; c < classes; ++c) {
    scores[static_cast<std::size_t>(c)] =
        tensor::dot(weight_row(w, dim, c), x) +
        w[static_cast<std::size_t>(classes * dim + c)];
  }
}

}  // namespace

LinearRegression::LinearRegression(index_t input_dim, index_t num_classes)
    : dim_(input_dim), classes_(num_classes) {
  HM_CHECK(input_dim > 0 && num_classes >= 2);
}

std::unique_ptr<Workspace> LinearRegression::make_workspace() const {
  return std::make_unique<LrWorkspace>();
}

void LinearRegression::init_params(VecView w, rng::Xoshiro256&) const {
  HM_CHECK(static_cast<index_t>(w.size()) == num_params());
  tensor::set_zero(w);
}

scalar_t LinearRegression::loss_and_grad(ConstVecView w,
                                         const data::Dataset& d,
                                         std::span<const index_t> batch,
                                         VecView grad, Workspace& ws) const {
  HM_CHECK(static_cast<index_t>(w.size()) == num_params());
  HM_CHECK(static_cast<index_t>(grad.size()) == num_params());
  HM_CHECK(!batch.empty());
  HM_CHECK(d.dim() == dim_ && d.num_classes == classes_);
  auto& scratch = static_cast<LrWorkspace&>(ws);
  tensor::set_zero(grad);
  const scalar_t inv_m = scalar_t{1} / static_cast<scalar_t>(batch.size());

  // Loss per sample: (1/2) sum_c (score_c - onehot_c)^2.
  scalar_t total = 0;
  for (const index_t i : batch) {
    ConstVecView x = d.x.row(i);
    const index_t label = d.y[static_cast<std::size_t>(i)];
    compute_scores(w, dim_, classes_, x, scratch.scores);
    for (index_t c = 0; c < classes_; ++c) {
      const scalar_t residual =
          scratch.scores[static_cast<std::size_t>(c)] -
          (c == label ? 1 : 0);
      total += scalar_t{0.5} * residual * residual;
      const scalar_t coeff = residual * inv_m;
      if (coeff == 0) continue;
      tensor::axpy(coeff, x,
                   grad.subspan(static_cast<std::size_t>(c * dim_),
                                static_cast<std::size_t>(dim_)));
      grad[static_cast<std::size_t>(classes_ * dim_ + c)] += coeff;
    }
  }
  return total * inv_m;
}

std::unique_ptr<BatchWorkspace> LinearRegression::make_batch_workspace()
    const {
  return std::make_unique<LrBatchWorkspace>();
}

void LinearRegression::loss_and_grad_batch(
    std::span<const BatchClientRef> clients, std::span<scalar_t> losses,
    BatchWorkspace& ws) const {
  HM_CHECK(losses.empty() || losses.size() == clients.size());
  auto& scratch = static_cast<LrBatchWorkspace&>(ws);
  for (std::size_t g = 0; g < clients.size(); ++g) {
    const BatchClientRef& cl = clients[g];
    const data::Dataset& d = *cl.data;
    HM_CHECK(static_cast<index_t>(cl.w.size()) == num_params());
    HM_CHECK(static_cast<index_t>(cl.grad.size()) == num_params());
    HM_CHECK(!cl.batch.empty());
    HM_CHECK(d.dim() == dim_ && d.num_classes == classes_);
    const auto m = static_cast<index_t>(cl.batch.size());

    // Scores per gathered row with the oracle's exact reductions: the
    // same per-class dot and single bias addition as compute_scores
    // (gathered rows are bitwise dataset rows).
    scratch.xb.resize_for_overwrite(m, dim_);
    for (index_t r = 0; r < m; ++r) {
      tensor::copy(d.x.row(cl.batch[static_cast<std::size_t>(r)]),
                   scratch.xb.row(r));
    }
    scratch.scores.resize_for_overwrite(m, classes_);
    for (index_t r = 0; r < m; ++r) {
      VecView row = scratch.scores.row(r);
      for (index_t c = 0; c < classes_; ++c) {
        row[static_cast<std::size_t>(c)] =
            tensor::dot(weight_row(cl.w, dim_, c), scratch.xb.row(r)) +
            cl.w[static_cast<std::size_t>(classes_ * dim_ + c)];
      }
    }

    tensor::set_zero(cl.grad);
    const scalar_t inv_m = scalar_t{1} / static_cast<scalar_t>(m);
    scalar_t total = 0;
    for (index_t r = 0; r < m; ++r) {
      const index_t i = cl.batch[static_cast<std::size_t>(r)];
      ConstVecView x = d.x.row(i);
      const index_t label = d.y[static_cast<std::size_t>(i)];
      ConstVecView scores = scratch.scores.row(r);
      for (index_t c = 0; c < classes_; ++c) {
        const scalar_t residual =
            scores[static_cast<std::size_t>(c)] - (c == label ? 1 : 0);
        total += scalar_t{0.5} * residual * residual;
        const scalar_t coeff = residual * inv_m;
        if (coeff == 0) continue;
        tensor::axpy(coeff, x,
                     cl.grad.subspan(static_cast<std::size_t>(c * dim_),
                                     static_cast<std::size_t>(dim_)));
        cl.grad[static_cast<std::size_t>(classes_ * dim_ + c)] += coeff;
      }
    }
    if (!losses.empty()) losses[g] = total * inv_m;
  }
}

scalar_t LinearRegression::loss(ConstVecView w, const data::Dataset& d,
                                std::span<const index_t> batch,
                                Workspace& ws) const {
  HM_CHECK(static_cast<index_t>(w.size()) == num_params());
  HM_CHECK(!batch.empty());
  auto& scratch = static_cast<LrWorkspace&>(ws);
  scalar_t total = 0;
  for (const index_t i : batch) {
    compute_scores(w, dim_, classes_, d.x.row(i), scratch.scores);
    const index_t label = d.y[static_cast<std::size_t>(i)];
    for (index_t c = 0; c < classes_; ++c) {
      const scalar_t residual =
          scratch.scores[static_cast<std::size_t>(c)] -
          (c == label ? 1 : 0);
      total += scalar_t{0.5} * residual * residual;
    }
  }
  return total / static_cast<scalar_t>(batch.size());
}

void LinearRegression::predict(ConstVecView w, const data::Dataset& d,
                               std::span<const index_t> batch,
                               std::span<index_t> out, Workspace& ws) const {
  HM_CHECK(batch.size() == out.size());
  auto& scratch = static_cast<LrWorkspace&>(ws);
  for (std::size_t r = 0; r < batch.size(); ++r) {
    compute_scores(w, dim_, classes_, d.x.row(batch[r]), scratch.scores);
    out[r] = tensor::argmax(tensor::ConstVecView(scratch.scores));
  }
}

}  // namespace hm::nn
