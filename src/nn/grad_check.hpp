// Finite-difference gradient verification, used by the test suite to
// certify every Model's analytic gradients.
#pragma once

#include "nn/model.hpp"

namespace hm::nn {

struct GradCheckResult {
  scalar_t max_abs_error = 0;   // max |analytic - numeric|
  scalar_t max_rel_error = 0;   // max relative error over checked coords
  index_t coords_checked = 0;
};

/// Central-difference check of loss_and_grad at `w` on `batch`.
/// Checks up to `max_coords` coordinates (all if <= 0), chosen evenly.
GradCheckResult check_gradients(const Model& model, ConstVecView w,
                                const data::Dataset& d,
                                std::span<const index_t> batch,
                                scalar_t epsilon = 1e-5,
                                index_t max_coords = 0);

}  // namespace hm::nn
