// Small convolutional network for image-shaped inputs: one valid-mode
// convolution layer (C filters, k x k, stride 1) with ReLU, followed by
// a dense softmax head. Inputs are single-channel S x S images stored
// row-major in the dataset's feature vector (dim == S * S).
//
// Parameter layout (flat): conv filters (C x k x k), conv biases (C),
// dense W (classes x C*(S-k+1)^2), dense b (classes).
#pragma once

#include "nn/model.hpp"

namespace hm::nn {

class ConvNet final : public Model {
 public:
  /// `image_side` = S (input dim must be S*S), `filters` = C,
  /// `kernel` = k (k <= S).
  ConvNet(index_t image_side, index_t filters, index_t kernel,
          index_t num_classes);

  index_t num_params() const override { return total_params_; }
  index_t num_classes() const override { return classes_; }
  index_t input_dim() const override { return side_ * side_; }
  bool is_convex() const override { return false; }

  index_t filters() const { return filters_; }
  index_t kernel() const { return kernel_; }
  index_t feature_side() const { return side_ - kernel_ + 1; }

  std::unique_ptr<Workspace> make_workspace() const override;
  void init_params(VecView w, rng::Xoshiro256& gen) const override;
  scalar_t loss_and_grad(ConstVecView w, const data::Dataset& d,
                         std::span<const index_t> batch, VecView grad,
                         Workspace& ws) const override;
  scalar_t loss(ConstVecView w, const data::Dataset& d,
                std::span<const index_t> batch, Workspace& ws) const override;
  void predict(ConstVecView w, const data::Dataset& d,
               std::span<const index_t> batch, std::span<index_t> out,
               Workspace& ws) const override;

 private:
  // Offsets into the flat parameter vector.
  index_t conv_w_offset() const { return 0; }
  index_t conv_b_offset() const { return filters_ * kernel_ * kernel_; }
  index_t dense_w_offset() const { return conv_b_offset() + filters_; }
  index_t dense_b_offset() const {
    return dense_w_offset() + classes_ * feature_dim();
  }
  index_t feature_dim() const {
    return filters_ * feature_side() * feature_side();
  }

  /// Forward for one sample: fills the workspace feature map (post-ReLU)
  /// and logits.
  void forward_sample(ConstVecView w, ConstVecView x,
                      std::vector<scalar_t>& features,
                      std::vector<scalar_t>& logits) const;

  index_t side_;
  index_t filters_;
  index_t kernel_;
  index_t classes_;
  index_t total_params_;
};

}  // namespace hm::nn
