// Linear least-squares "classification" head: fits one linear score per
// class under mean-squared error against one-hot targets. Convex, like
// softmax regression, but with a different loss geometry — useful for
// checking that the minimax machinery is loss-agnostic (F(w, p) only
// requires per-edge losses and gradients).
//
// Parameter layout matches SoftmaxRegression: W (classes x dim) then b.
#pragma once

#include "nn/model.hpp"

namespace hm::nn {

class LinearRegression final : public Model {
 public:
  LinearRegression(index_t input_dim, index_t num_classes);

  index_t num_params() const override { return (dim_ + 1) * classes_; }
  index_t num_classes() const override { return classes_; }
  index_t input_dim() const override { return dim_; }
  bool is_convex() const override { return true; }

  std::unique_ptr<Workspace> make_workspace() const override;
  void init_params(VecView w, rng::Xoshiro256& gen) const override;
  scalar_t loss_and_grad(ConstVecView w, const data::Dataset& d,
                         std::span<const index_t> batch, VecView grad,
                         Workspace& ws) const override;
  scalar_t loss(ConstVecView w, const data::Dataset& d,
                std::span<const index_t> batch, Workspace& ws) const override;
  void predict(ConstVecView w, const data::Dataset& d,
               std::span<const index_t> batch, std::span<index_t> out,
               Workspace& ws) const override;

  /// Batched path: per client, one dot_nt sweep computes every score row;
  /// bit-identical per client to loss_and_grad (see SoftmaxRegression).
  std::unique_ptr<BatchWorkspace> make_batch_workspace() const override;
  void loss_and_grad_batch(std::span<const BatchClientRef> clients,
                           std::span<scalar_t> losses,
                           BatchWorkspace& ws) const override;

 private:
  index_t dim_;
  index_t classes_;
};

}  // namespace hm::nn
