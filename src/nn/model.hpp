// Model abstraction used by every federated algorithm.
//
// Models are *stateless* with respect to parameters: the architecture
// object holds shapes only, and parameters live in a caller-owned flat
// vector. This is the natural shape for federated optimization, where one
// architecture is shared by many parameter copies (per client, per edge,
// global, checkpoint) and aggregation is a BLAS-1 average of flat vectors.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "data/dataset.hpp"
#include "rng/rng.hpp"
#include "tensor/matrix.hpp"

namespace hm::nn {

using tensor::ConstVecView;
using tensor::VecView;

/// Opaque per-caller scratch space. One Workspace per thread; reused
/// across calls so hot loops do not allocate.
class Workspace {
 public:
  virtual ~Workspace() = default;
};

class Model {
 public:
  virtual ~Model() = default;

  /// Length of the flat parameter vector.
  virtual index_t num_params() const = 0;

  /// Number of output classes.
  virtual index_t num_classes() const = 0;

  /// Input feature dimension.
  virtual index_t input_dim() const = 0;

  /// Whether the per-sample loss is convex in the parameters.
  virtual bool is_convex() const = 0;

  virtual std::unique_ptr<Workspace> make_workspace() const = 0;

  /// Initialize `w` (Xavier/He as appropriate for the architecture).
  virtual void init_params(VecView w, rng::Xoshiro256& gen) const = 0;

  /// Mean cross-entropy loss over the batch; writes the gradient of that
  /// mean into `grad` (overwriting it). Returns the loss.
  virtual scalar_t loss_and_grad(ConstVecView w, const data::Dataset& d,
                                 std::span<const index_t> batch, VecView grad,
                                 Workspace& ws) const = 0;

  /// Mean cross-entropy loss over the batch (no gradient).
  virtual scalar_t loss(ConstVecView w, const data::Dataset& d,
                        std::span<const index_t> batch,
                        Workspace& ws) const = 0;

  /// Predicted class per batch row, written into `out` (same length).
  virtual void predict(ConstVecView w, const data::Dataset& d,
                       std::span<const index_t> batch,
                       std::span<index_t> out, Workspace& ws) const = 0;
};

/// 0..n-1, the full-batch index list.
std::vector<index_t> all_indices(index_t n);

/// Fraction of correct predictions over the whole dataset (single thread;
/// see hm::metrics for the parallel per-edge evaluator).
scalar_t accuracy(const Model& model, ConstVecView w, const data::Dataset& d,
                  Workspace& ws);

}  // namespace hm::nn
