// Model abstraction used by every federated algorithm.
//
// Models are *stateless* with respect to parameters: the architecture
// object holds shapes only, and parameters live in a caller-owned flat
// vector. This is the natural shape for federated optimization, where one
// architecture is shared by many parameter copies (per client, per edge,
// global, checkpoint) and aggregation is a BLAS-1 average of flat vectors.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "data/dataset.hpp"
#include "rng/rng.hpp"
#include "tensor/matrix.hpp"

namespace hm::nn {

using tensor::ConstVecView;
using tensor::VecView;

/// Opaque per-caller scratch space. One Workspace per thread; reused
/// across calls so hot loops do not allocate.
class Workspace {
 public:
  virtual ~Workspace() = default;
};

/// Opaque scratch for the batched multi-client path. One instance per
/// engine (NOT per thread): a loss_and_grad_batch call owns it for the
/// whole call and parallelizes internally.
class BatchWorkspace {
 public:
  virtual ~BatchWorkspace() = default;
};

/// One client's slice of a batched gradient evaluation: its own
/// parameters, dataset shard, sampled batch, and gradient output. Grad
/// spans of distinct clients must not overlap.
struct BatchClientRef {
  ConstVecView w;
  const data::Dataset* data;
  std::span<const index_t> batch;
  VecView grad;
};

/// One slice of a batched loss-only evaluation: parameters, a dataset
/// shard, and the rows to score. Jobs that share `w` (by data pointer)
/// can be fused into one stacked sweep by loss_many overrides.
struct LossJob {
  ConstVecView w;
  const data::Dataset* data;
  std::span<const index_t> batch;
};

class Model {
 public:
  virtual ~Model() = default;

  /// Length of the flat parameter vector.
  virtual index_t num_params() const = 0;

  /// Number of output classes.
  virtual index_t num_classes() const = 0;

  /// Input feature dimension.
  virtual index_t input_dim() const = 0;

  /// Whether the per-sample loss is convex in the parameters.
  virtual bool is_convex() const = 0;

  virtual std::unique_ptr<Workspace> make_workspace() const = 0;

  /// Initialize `w` (Xavier/He as appropriate for the architecture).
  virtual void init_params(VecView w, rng::Xoshiro256& gen) const = 0;

  /// Mean cross-entropy loss over the batch; writes the gradient of that
  /// mean into `grad` (overwriting it). Returns the loss.
  virtual scalar_t loss_and_grad(ConstVecView w, const data::Dataset& d,
                                 std::span<const index_t> batch, VecView grad,
                                 Workspace& ws) const = 0;

  /// Mean cross-entropy loss over the batch (no gradient).
  virtual scalar_t loss(ConstVecView w, const data::Dataset& d,
                        std::span<const index_t> batch,
                        Workspace& ws) const = 0;

  /// Predicted class per batch row, written into `out` (same length).
  virtual void predict(ConstVecView w, const data::Dataset& d,
                       std::span<const index_t> batch,
                       std::span<index_t> out, Workspace& ws) const = 0;

  virtual std::unique_ptr<BatchWorkspace> make_batch_workspace() const;

  /// Evaluate loss_and_grad for many clients in one call, writing each
  /// client's mean loss into losses[g] (when `losses` is non-empty; it
  /// must then have one slot per client). CONTRACT: per client the loss
  /// and gradient are bit-identical to a loss_and_grad call with the same
  /// arguments — overriding models may fuse work across clients (stacked
  /// GEMMs, shared parallel regions) but must keep every per-element
  /// reduction order. The base implementation simply loops.
  virtual void loss_and_grad_batch(std::span<const BatchClientRef> clients,
                                   std::span<scalar_t> losses,
                                   BatchWorkspace& ws) const;

  /// Evaluate many loss-only jobs in one call, writing job g's mean loss
  /// into losses[g] (one slot per job, required). CONTRACT: every job's
  /// result is bit-identical to a loss() call with the same arguments.
  /// Overriding models may stack consecutive jobs that share a parameter
  /// vector into one fused evaluation sweep (the trainers' loss-estimation
  /// phases and the per-edge evaluators all score many shards at one `w`),
  /// which amortizes operand packing and runs the kernels at full batch
  /// throughput. The base implementation simply loops over loss().
  virtual void loss_many(std::span<const LossJob> jobs,
                         std::span<scalar_t> losses, Workspace& ws) const;
};

/// 0..n-1, the full-batch index list.
std::vector<index_t> all_indices(index_t n);

/// Fraction of correct predictions over the whole dataset (single thread;
/// see hm::metrics for the parallel per-edge evaluator).
scalar_t accuracy(const Model& model, ConstVecView w, const data::Dataset& d,
                  Workspace& ws);

}  // namespace hm::nn
