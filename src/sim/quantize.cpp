#include "sim/quantize.hpp"

#include <cmath>

#include "core/check.hpp"

namespace hm::sim {

void quantize_payload(tensor::VecView v, int bits, rng::Xoshiro256& gen) {
  HM_CHECK_MSG(1 <= bits && bits <= 16, "bits=" << bits);
  if (v.empty()) return;
  scalar_t scale = 0;
  for (const scalar_t x : v) scale = std::max(scale, std::abs(x));
  if (scale == 0) return;
  const auto levels = static_cast<scalar_t>((1 << bits) - 1);
  // Map [-scale, scale] onto [0, levels], stochastically round, map back.
  const scalar_t step = 2 * scale / levels;
  for (auto& x : v) {
    const scalar_t t = (x + scale) / step;        // in [0, levels]
    const scalar_t floor_t = std::floor(t);
    const scalar_t frac = t - floor_t;
    const scalar_t rounded =
        floor_t + (static_cast<scalar_t>(gen.uniform()) < frac ? 1 : 0);
    x = rounded * step - scale;
  }
}

std::uint64_t payload_bytes(index_t dim, int bits) {
  HM_CHECK(dim >= 0);
  if (bits <= 0) return static_cast<std::uint64_t>(dim) * 8;  // float64
  // Packed coordinates + one 8-byte scale.
  const std::uint64_t coord_bits =
      static_cast<std::uint64_t>(dim) * static_cast<std::uint64_t>(bits);
  return (coord_bits + 7) / 8 + 8;
}

}  // namespace hm::sim
