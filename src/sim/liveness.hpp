// Coordinator-side liveness ledger for edge servers whose compute rides
// a fallible transport. A simulated FaultPlan *predicts* crashes; this
// tracks crashes that actually happened (a worker process died). The
// trainer folds both through one `edge is down` predicate, so the
// OnFault policies treat a dead process exactly like a planned
// edge-crash fault event.
#pragma once

#include <vector>

#include "core/types.hpp"

namespace hm::sim {

/// Monotone down-set over edge ids: an edge marked down stays down (a
/// crashed worker process is never restarted mid-run).
struct EdgeLiveness {
  void init(index_t n) {
    down_.assign(static_cast<std::size_t>(n), 0);
    any_ = false;
  }
  void mark_down(index_t edge) {
    down_[static_cast<std::size_t>(edge)] = 1;
    any_ = true;
  }
  bool down(index_t edge) const {
    return !down_.empty() && down_[static_cast<std::size_t>(edge)] != 0;
  }
  bool any_down() const { return any_; }

 private:
  std::vector<char> down_;
  bool any_ = false;
};

}  // namespace hm::sim
