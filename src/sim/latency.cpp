#include "sim/latency.hpp"

#include "core/check.hpp"

namespace hm::sim {

TimeBreakdown time_breakdown(const CommStats& comm,
                             const NetworkProfile& net, double concurrency) {
  if (concurrency <= 0) concurrency = 1;
  TimeBreakdown t;
  HM_CHECK(net.client_edge.bandwidth_bps > 0 &&
           net.edge_cloud.bandwidth_bps > 0);
  t.client_edge_s =
      static_cast<double>(comm.client_edge_rounds) *
          net.client_edge.latency_s +
      static_cast<double>(comm.client_edge_bytes) * 8 /
          (net.client_edge.bandwidth_bps * concurrency);
  t.edge_cloud_s =
      static_cast<double>(comm.edge_cloud_rounds) *
          net.edge_cloud.latency_s +
      static_cast<double>(comm.edge_cloud_bytes) * 8 /
          (net.edge_cloud.bandwidth_bps * concurrency);
  // Fault overhead: each retry attempt and each straggler wait costs
  // extra round-trips on its link (LinkFaultStats::extra_rtts), charged
  // exactly once here — the byte meters already count a lost payload's
  // bandwidth, so retries add latency only.
  t.client_edge_s += comm.client_edge_fault.extra_rtts *
                     net.client_edge.latency_s;
  t.edge_cloud_s += comm.edge_cloud_fault.extra_rtts *
                    net.edge_cloud.latency_s;
  return t;
}

double NetworkProfile::seconds(const CommStats& comm,
                               double concurrency) const {
  return time_breakdown(comm, *this, concurrency).total();
}

}  // namespace hm::sim
