// L-level hub-and-spoke topology — the paper's "multi-layer hierarchical
// network" in full generality (§3 uses the three-layer client-edge-cloud
// instance as the representative example).
//
// Depth 0 is the cloud; a node at depth l has branching[l] children; the
// leaves (clients) sit at depth branching.size(). "Areas" are the depth-1
// subtrees — the units the minimax weight vector p ranges over, exactly
// as edge areas in the three-layer case.
#pragma once

#include <vector>

#include "core/check.hpp"
#include "core/types.hpp"

namespace hm::sim {

class MultiTopology {
 public:
  explicit MultiTopology(std::vector<index_t> branching)
      : branching_(std::move(branching)) {
    HM_CHECK_MSG(!branching_.empty(), "need at least one level");
    for (const index_t b : branching_) HM_CHECK(b > 0);
  }

  /// Number of link levels (= tree depth). The classic client-edge-cloud
  /// system has depth 2: branching = {N_E, N_0}.
  index_t depth() const { return static_cast<index_t>(branching_.size()); }

  const std::vector<index_t>& branching() const { return branching_; }

  /// Nodes at a given depth (depth 0 = 1 cloud node).
  index_t nodes_at(index_t d) const {
    HM_CHECK(0 <= d && d <= depth());
    index_t n = 1;
    for (index_t l = 0; l < d; ++l) {
      n *= branching_[static_cast<std::size_t>(l)];
    }
    return n;
  }

  index_t num_leaves() const { return nodes_at(depth()); }

  /// Minimax areas = depth-1 subtrees.
  index_t num_areas() const { return branching_.front(); }

  index_t leaves_per_area() const { return num_leaves() / num_areas(); }

  /// Area that leaf `leaf` belongs to (leaves are numbered depth-first,
  /// so areas own contiguous leaf ranges).
  index_t area_of_leaf(index_t leaf) const {
    HM_CHECK(0 <= leaf && leaf < num_leaves());
    return leaf / leaves_per_area();
  }

  /// Leaves under the subtree rooted at depth `d`, subtree index `node`
  /// (nodes at each depth are numbered depth-first, 0-based).
  index_t leaves_per_node(index_t d) const {
    return num_leaves() / nodes_at(d);
  }

  index_t first_leaf_of(index_t d, index_t node) const {
    HM_CHECK(0 <= node && node < nodes_at(d));
    return node * leaves_per_node(d);
  }

 private:
  std::vector<index_t> branching_;
};

}  // namespace hm::sim
