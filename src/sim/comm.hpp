// Communication metering for the hierarchical network. Every algorithm
// charges its traffic here, so "communication rounds/overhead" comparisons
// across two-layer and three-layer methods use one consistent meter.
//
// Conventions:
//  * A *model payload* is one full parameter vector (d scalars).
//  * A *scalar payload* is one loss value or one small control message.
//  * A *round* on a link is one synchronized aggregation event on that
//    link (e.g. one client-edge aggregation = 1 client_edge round,
//    regardless of how many clients participate). For two-layer methods
//    the client-server link is charged as edge_cloud, since the server
//    plays the cloud role and the clients connect to it over the
//    wide-area (expensive) segment.
#pragma once

#include <cstdint>

#include "core/types.hpp"

namespace hm::sim {

struct CommStats {
  // Aggregation/synchronization events per link.
  std::uint64_t client_edge_rounds = 0;
  std::uint64_t edge_cloud_rounds = 0;

  // Model-sized payload counts (uplink = toward the server/cloud).
  std::uint64_t client_edge_models_up = 0;
  std::uint64_t client_edge_models_down = 0;
  std::uint64_t edge_cloud_models_up = 0;
  std::uint64_t edge_cloud_models_down = 0;

  // Scalar payloads (loss estimates, checkpoint indices).
  std::uint64_t client_edge_scalars = 0;
  std::uint64_t edge_cloud_scalars = 0;

  // Wire bytes per link (model payloads at their transmitted precision —
  // see sim::payload_bytes — plus 8 bytes per scalar payload).
  std::uint64_t client_edge_bytes = 0;
  std::uint64_t edge_cloud_bytes = 0;

  /// Total synchronization rounds across both link levels — the x-axis
  /// used for the Fig. 3 / Fig. 4 communication comparisons.
  std::uint64_t total_rounds() const {
    return client_edge_rounds + edge_cloud_rounds;
  }

  /// Total model payloads crossing the expensive edge-cloud segment.
  std::uint64_t edge_cloud_models() const {
    return edge_cloud_models_up + edge_cloud_models_down;
  }

  /// Total model payloads anywhere in the network.
  std::uint64_t total_models() const {
    return client_edge_models_up + client_edge_models_down +
           edge_cloud_models();
  }

  CommStats& operator+=(const CommStats& o) {
    client_edge_rounds += o.client_edge_rounds;
    edge_cloud_rounds += o.edge_cloud_rounds;
    client_edge_models_up += o.client_edge_models_up;
    client_edge_models_down += o.client_edge_models_down;
    edge_cloud_models_up += o.edge_cloud_models_up;
    edge_cloud_models_down += o.edge_cloud_models_down;
    client_edge_scalars += o.client_edge_scalars;
    edge_cloud_scalars += o.edge_cloud_scalars;
    client_edge_bytes += o.client_edge_bytes;
    edge_cloud_bytes += o.edge_cloud_bytes;
    return *this;
  }
};

}  // namespace hm::sim
