// Communication metering for the hierarchical network. Every algorithm
// charges its traffic here, so "communication rounds/overhead" comparisons
// across two-layer and three-layer methods use one consistent meter.
//
// Conventions:
//  * A *model payload* is one full parameter vector (d scalars).
//  * A *scalar payload* is one loss value or one small control message.
//  * A *round* on a link is one synchronized aggregation event on that
//    link (e.g. one client-edge aggregation = 1 client_edge round,
//    regardless of how many clients participate). For two-layer methods
//    the client-server link is charged as edge_cloud, since the server
//    plays the cloud role and the clients connect to it over the
//    wide-area (expensive) segment.
#pragma once

#include <cstdint>

#include "core/types.hpp"

namespace hm::sim {

/// Delivery accounting for one link under fault injection (sim/fault.hpp).
/// One "attempt" is one wire transmission of a payload; a logical message
/// may take several attempts (bounded retries). Every attempt ends in
/// exactly one of three states, so
///     attempted == delivered + dropped + in_retry
/// holds at all times — the conservation law test_sim pins down.
struct LinkFaultStats {
  std::uint64_t attempted = 0;   // wire attempts (first sends + retries)
  std::uint64_t delivered = 0;   // attempts that arrived
  std::uint64_t dropped = 0;     // final losses (report lost, budget spent)
  std::uint64_t in_retry = 0;    // non-final losses (a retry follows)
  std::uint64_t straggled = 0;   // delivered attempts that arrived late
  // Extra round-trip equivalents owed to faults: exactly 1 per retry
  // attempt plus (mult - 1) per straggled report. The latency model
  // (sim/latency.hpp) charges this once — retries never also inflate the
  // per-round latency term, so nothing is double-charged.
  double extra_rtts = 0;

  /// A report that was never transmitted successfully and is not retried
  /// (client dropout: the device went silent mid-round).
  void note_lost_report() {
    attempted += 1;
    dropped += 1;
  }

  /// A report that arrived on the first attempt on a loss-free link
  /// (client-edge reports are local and never retried).
  void note_delivered() {
    attempted += 1;
    delivered += 1;
  }

  /// A delivered report that arrived `mult`x late (straggler).
  void note_straggle(double mult) {
    if (mult > 1) {
      straggled += 1;
      extra_rtts += mult - 1;
    }
  }

  /// Logical messages with a final outcome.
  std::uint64_t messages() const { return delivered + dropped; }

  LinkFaultStats& operator+=(const LinkFaultStats& o) {
    attempted += o.attempted;
    delivered += o.delivered;
    dropped += o.dropped;
    in_retry += o.in_retry;
    straggled += o.straggled;
    extra_rtts += o.extra_rtts;
    return *this;
  }
};

struct CommStats {
  // Aggregation/synchronization events per link.
  std::uint64_t client_edge_rounds = 0;
  std::uint64_t edge_cloud_rounds = 0;

  // Model-sized payload counts (uplink = toward the server/cloud).
  std::uint64_t client_edge_models_up = 0;
  std::uint64_t client_edge_models_down = 0;
  std::uint64_t edge_cloud_models_up = 0;
  std::uint64_t edge_cloud_models_down = 0;

  // Scalar payloads (loss estimates, checkpoint indices).
  std::uint64_t client_edge_scalars = 0;
  std::uint64_t edge_cloud_scalars = 0;

  // Wire bytes per link (model payloads at their transmitted precision —
  // see sim::payload_bytes — plus 8 bytes per scalar payload).
  std::uint64_t client_edge_bytes = 0;
  std::uint64_t edge_cloud_bytes = 0;

  // Fault-injection delivery accounting per link (all zero when training
  // runs without a FaultPlan). The model/byte counters above still meter
  // *offered* traffic — a lost payload consumed the wire — while these
  // track what actually arrived, what was lost, and what arrived late.
  LinkFaultStats client_edge_fault;
  LinkFaultStats edge_cloud_fault;

  /// Total synchronization rounds across both link levels — the x-axis
  /// used for the Fig. 3 / Fig. 4 communication comparisons.
  std::uint64_t total_rounds() const {
    return client_edge_rounds + edge_cloud_rounds;
  }

  /// Total model payloads crossing the expensive edge-cloud segment.
  std::uint64_t edge_cloud_models() const {
    return edge_cloud_models_up + edge_cloud_models_down;
  }

  /// Total model payloads anywhere in the network.
  std::uint64_t total_models() const {
    return client_edge_models_up + client_edge_models_down +
           edge_cloud_models();
  }

  /// Fault-accounting roll-ups across both links (for History/TSV).
  std::uint64_t msgs_delivered() const {
    return client_edge_fault.delivered + edge_cloud_fault.delivered;
  }
  std::uint64_t msgs_dropped() const {
    return client_edge_fault.dropped + edge_cloud_fault.dropped;
  }
  std::uint64_t msgs_straggled() const {
    return client_edge_fault.straggled + edge_cloud_fault.straggled;
  }

  CommStats& operator+=(const CommStats& o) {
    client_edge_rounds += o.client_edge_rounds;
    edge_cloud_rounds += o.edge_cloud_rounds;
    client_edge_models_up += o.client_edge_models_up;
    client_edge_models_down += o.client_edge_models_down;
    edge_cloud_models_up += o.edge_cloud_models_up;
    edge_cloud_models_down += o.edge_cloud_models_down;
    client_edge_scalars += o.client_edge_scalars;
    edge_cloud_scalars += o.edge_cloud_scalars;
    client_edge_bytes += o.client_edge_bytes;
    edge_cloud_bytes += o.edge_cloud_bytes;
    client_edge_fault += o.client_edge_fault;
    edge_cloud_fault += o.edge_cloud_fault;
    return *this;
  }
};

}  // namespace hm::sim
