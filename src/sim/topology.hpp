// Client–edge–cloud topology description (Fig. 1 of the paper): a
// hub-and-spoke tree where every edge server talks to the cloud and each
// client is attached to exactly one edge server.
#pragma once

#include <vector>

#include "core/check.hpp"
#include "core/types.hpp"
#include "sim/fault.hpp"

namespace hm::sim {

class HierTopology {
 public:
  /// Uniform topology: `num_edges` edge areas with `clients_per_edge`
  /// clients each (N = N_E * N_0, the paper's setting).
  HierTopology(index_t num_edges, index_t clients_per_edge)
      : num_edges_(num_edges), clients_per_edge_(clients_per_edge) {
    HM_CHECK(num_edges > 0 && clients_per_edge > 0);
  }

  index_t num_edges() const { return num_edges_; }           // N_E
  index_t clients_per_edge() const { return clients_per_edge_; }  // N_0
  index_t num_clients() const { return num_edges_ * clients_per_edge_; }

  /// Global client id of the i-th client in edge area e.
  index_t client_id(index_t edge, index_t i) const {
    HM_CHECK(0 <= edge && edge < num_edges_);
    HM_CHECK(0 <= i && i < clients_per_edge_);
    return edge * clients_per_edge_ + i;
  }

  index_t edge_of_client(index_t client) const {
    HM_CHECK(0 <= client && client < num_clients());
    return client / clients_per_edge_;
  }

  /// All client ids in edge area e.
  std::vector<index_t> clients_of_edge(index_t edge) const {
    std::vector<index_t> out;
    out.reserve(static_cast<std::size_t>(clients_per_edge_));
    for (index_t i = 0; i < clients_per_edge_; ++i) {
      out.push_back(client_id(edge, i));
    }
    return out;
  }

  /// Client ids in edge area e whose reports reach the edge server at
  /// `round` under `plan`: crashed and dropped clients are excluded, and
  /// a crashed edge server takes the whole area offline (empty result).
  /// With a disabled plan this is exactly clients_of_edge(edge).
  std::vector<index_t> surviving_clients_of_edge(index_t edge,
                                                 const FaultPlan& plan,
                                                 index_t round) const {
    if (!plan.enabled()) return clients_of_edge(edge);
    std::vector<index_t> out;
    out.reserve(static_cast<std::size_t>(clients_per_edge_));
    if (plan.edge_crashed(round, edge)) return out;
    for (index_t i = 0; i < clients_per_edge_; ++i) {
      const index_t id = client_id(edge, i);
      if (plan.client_reports(round, id)) out.push_back(id);
    }
    return out;
  }

 private:
  index_t num_edges_;
  index_t clients_per_edge_;
};

}  // namespace hm::sim
