// Fault injection for the client–edge–cloud simulator: client dropout,
// straggler delays, edge-link message loss with bounded retries,
// crash-at-round schedules, Byzantine client attacks (sign-flip,
// scaled-noise, label-flip), and population churn.
//
// Design: a FaultPlan is a *pure function* of (seed, round, entity). Every
// query derives its randomness from the plan's own root stream through
// named splits (hm::rng::Xoshiro256::split does not advance the parent),
// so queries are independent of call order and thread schedule, two runs
// with the same seed replay bit-identically, and the plan's stream never
// perturbs the training streams — a run with a zero-probability plan is
// bit-identical to a run with no plan at all. Attacked rounds obey the
// same contract: which clients attack in round k and the noise they
// inject are fixed by (seed, round, client) alone.
#pragma once

#include <vector>

#include "core/types.hpp"
#include "rng/rng.hpp"
#include "sim/comm.hpp"

namespace hm::sim {

/// Byzantine attack family a compromised client mounts on its model
/// report. Attacks corrupt only what the client *uploads* (or, for
/// label-flip, what it trains on); honest clients and the server-side
/// aggregation streams are untouched.
enum class AttackKind {
  kNone,        // no attack (attack_prob is ignored)
  kSignFlip,    // reflect the update around the broadcast model: the
                // attacker reports ref - scale * (w - ref)
  kScaledNoise, // add scale * N(0, I) Gaussian noise to the report
  kLabelFlip,   // train on a label-flipped shard (y -> C-1-y)
};

/// Declarative fault model. All probabilities are per-decision (per round
/// and entity, or per wire attempt); crash schedules are absolute round
/// indices. The default-constructed spec is the null model: `enabled`
/// is false and trainers take their fault-free fast path untouched.
struct FaultSpec {
  bool enabled = false;            // master switch; false = perfect network

  // Per-(round, client) chance that the client's report for the round is
  // lost (the device computed but went silent before uploading).
  double client_dropout_prob = 0;

  // Per-(round, client) chance the client's report arrives late, and the
  // delay multiplier distribution: a straggler's report takes
  // mult ~ Uniform[1, 2*straggler_mult_mean - 1] link round-trips, so the
  // mean multiplier is straggler_mult_mean.
  double straggler_prob = 0;
  double straggler_mult_mean = 4.0;

  // Per-attempt chance that a message on the edge-cloud (wide-area) link
  // is lost; each loss consumes one retry from the bounded budget.
  double edge_loss_prob = 0;
  index_t max_retries = 2;

  // crash_round[id] >= 0 crashes that entity permanently at the start of
  // that round; missing entries / negative values = never crashes. A
  // crashed client computes nothing and attempts no sends; a crashed edge
  // server takes its whole client area offline.
  std::vector<index_t> client_crash_round;
  std::vector<index_t> edge_crash_round;

  // Byzantine attacks: each (round, client) pair is independently
  // compromised with probability attack_prob; attack_scale is the
  // sign-flip reflection gain / scaled-noise standard deviation.
  AttackKind attack = AttackKind::kNone;
  double attack_prob = 0;
  double attack_scale = 1.0;

  // Population churn: clients depart and re-arrive over the topology. A
  // client is absent for a whole dwell window of churn_dwell rounds with
  // probability churn_prob, drawn per (client, window) — so presence
  // changes at window boundaries, modelling devices leaving and
  // rejoining rather than flickering every round.
  double churn_prob = 0;
  index_t churn_dwell = 1;

  seed_t seed = 0x6661756c74;  // "fault"; independent of the training seed

  /// Throws CheckError on out-of-range parameters (probabilities outside
  /// [0, 1], multiplier mean < 1, negative retry budget).
  void validate() const;
};

/// Compose a per-round-unique message id for deliver()/attempt_lost()
/// from a small kind tag and an entity index.
constexpr std::uint64_t fault_msg(std::uint64_t kind, index_t entity) {
  return (kind << 48) | static_cast<std::uint64_t>(entity);
}
inline constexpr std::uint64_t kMsgModelUp = 1;  // model/checkpoint uplink
inline constexpr std::uint64_t kMsgLossUp = 2;   // Phase-2 loss scalar

class FaultPlan {
 public:
  /// Null plan: nothing ever fails, enabled() is false.
  FaultPlan() = default;

  /// Validates the spec and fixes the plan's random streams.
  explicit FaultPlan(const FaultSpec& spec);

  bool enabled() const { return spec_.enabled; }
  const FaultSpec& spec() const { return spec_; }

  /// Entity is permanently down from its scheduled crash round onward.
  bool client_crashed(index_t round, index_t client) const;
  bool edge_crashed(index_t round, index_t edge) const;

  /// Transient per-round dropout draw (independent of crashes).
  bool client_dropped(index_t round, index_t client) const;

  /// Churn: the client has departed for the dwell window containing
  /// `round`. Pure function of (seed, client, round / churn_dwell).
  bool client_absent(index_t round, index_t client) const;

  /// Permanently crashed OR churned away: the client takes no part in
  /// the round at all (no compute, no report, no download).
  bool client_offline(index_t round, index_t client) const {
    return client_crashed(round, client) || client_absent(round, client);
  }

  /// Not offline and not dropped: the client computes and uploads.
  bool client_reports(index_t round, index_t client) const {
    return !client_offline(round, client) && !client_dropped(round, client);
  }

  /// Byzantine draw: the client is compromised this round. Independent
  /// per (round, client); a compromised-but-offline client attacks
  /// nothing (callers only consult this for participating clients).
  bool client_attacker(index_t round, index_t client) const;

  /// Label-flip arm of client_attacker: the client trains on a
  /// label-flipped shard this round (its upload is otherwise honest).
  bool client_poisoned(index_t round, index_t client) const {
    return spec_.attack == AttackKind::kLabelFlip &&
           client_attacker(round, client);
  }

  /// True when the plan can corrupt uploaded payloads (sign-flip or
  /// scaled-noise with positive probability) — the trainers' cue to
  /// check client_attacker / call corrupt_payload per report.
  bool payload_attack() const {
    return enabled() && spec_.attack_prob > 0 &&
           (spec_.attack == AttackKind::kSignFlip ||
            spec_.attack == AttackKind::kScaledNoise);
  }

  /// Apply the configured payload attack in place to `payload` (the
  /// model the client is about to upload). `ref` is the round's
  /// broadcast model, needed by sign-flip's reflection; both spans have
  /// length `dim`. Deterministic per (round, client): scaled-noise draws
  /// its Gaussian stream from the plan root in fixed index order. Call
  /// only when client_attacker(round, client) is true.
  void corrupt_payload(index_t round, index_t client, const scalar_t* ref,
                       scalar_t* payload, index_t dim) const;

  /// Delay multiplier (>= 1) for the client's report this round; 1 when
  /// the client is not a straggler.
  double straggler_mult(index_t round, index_t client) const;

  /// Whether wire attempt `attempt` of message `msg` in `round` is lost
  /// on the edge-cloud link.
  bool attempt_lost(index_t round, std::uint64_t msg, index_t attempt) const;

  /// Simulate one edge-cloud message with the bounded retry budget.
  /// Returns true if it was delivered. Accounts every attempt into `link`
  /// (delivered / in_retry / dropped) and charges one extra round-trip
  /// per retry to link.extra_rtts.
  bool deliver(index_t round, std::uint64_t msg, LinkFaultStats& link) const;

 private:
  FaultSpec spec_;
  rng::Xoshiro256 root_;
};

}  // namespace hm::sim
