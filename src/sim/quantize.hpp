// Stochastic uniform quantization of model payloads — the compression
// scheme of Hier-Local-QSGD (Liu et al., TWC'23 [22]), the paper's cited
// extension of hierarchical FL. Quantizing uplink models trades accuracy
// for bytes on both network segments.
//
// Scheme: per payload, scale = max|v_i|; each coordinate is mapped to one
// of 2^bits - 1 levels in [-scale, scale] by *stochastic* rounding, which
// keeps the quantizer unbiased: E[Q(v)] = v.
#pragma once

#include "rng/rng.hpp"
#include "tensor/matrix.hpp"

namespace hm::sim {

/// In-place simulate transmit+receive of `v` at `bits` bits per
/// coordinate (bits in [1, 16]; callers treat 0 as "no quantization").
/// Stochastic rounding driven by `gen`.
void quantize_payload(tensor::VecView v, int bits, rng::Xoshiro256& gen);

/// Wire size of one model payload of dimension `dim` at `bits` bits per
/// coordinate (plus one float64 scale). bits == 0 means uncompressed
/// float64 coordinates.
std::uint64_t payload_bytes(index_t dim, int bits);

}  // namespace hm::sim
