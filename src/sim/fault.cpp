#include "sim/fault.hpp"

#include "core/check.hpp"

namespace hm::sim {

namespace {

// Stream-split tags for the fault plan's private RNG root (arbitrary
// distinct constants, ASCII mnemonics). They never collide with the
// algorithm layer's tags because the plan hangs off its own seed.
inline constexpr std::uint64_t kTagDrop = 0x64726f70;      // "drop"
inline constexpr std::uint64_t kTagStraggle = 0x73747267;  // "strg"
inline constexpr std::uint64_t kTagLoss = 0x6c6f7365;      // "lose"
inline constexpr std::uint64_t kTagAttack = 0x6174746b;    // "attk"
inline constexpr std::uint64_t kTagNoise = 0x6e6f6973;     // "nois"
inline constexpr std::uint64_t kTagChurn = 0x6368726e;     // "chrn"

/// crash_round[id] when present and nonnegative, else "never".
bool crashed_at(const std::vector<index_t>& schedule, index_t round,
                index_t id) {
  if (id < 0 || id >= static_cast<index_t>(schedule.size())) return false;
  const index_t at = schedule[static_cast<std::size_t>(id)];
  return at >= 0 && round >= at;
}

}  // namespace

void FaultSpec::validate() const {
  HM_CHECK_MSG(client_dropout_prob >= 0 && client_dropout_prob <= 1,
               "client_dropout_prob must be in [0,1], got "
                   << client_dropout_prob);
  HM_CHECK_MSG(straggler_prob >= 0 && straggler_prob <= 1,
               "straggler_prob must be in [0,1], got " << straggler_prob);
  HM_CHECK_MSG(straggler_mult_mean >= 1,
               "straggler_mult_mean must be >= 1, got " << straggler_mult_mean);
  HM_CHECK_MSG(edge_loss_prob >= 0 && edge_loss_prob <= 1,
               "edge_loss_prob must be in [0,1], got " << edge_loss_prob);
  HM_CHECK_MSG(max_retries >= 0,
               "max_retries must be >= 0, got " << max_retries);
  HM_CHECK_MSG(attack_prob >= 0 && attack_prob <= 1,
               "attack_prob must be in [0,1], got " << attack_prob);
  HM_CHECK_MSG(attack_scale >= 0,
               "attack_scale must be >= 0, got " << attack_scale);
  HM_CHECK_MSG(churn_prob >= 0 && churn_prob <= 1,
               "churn_prob must be in [0,1], got " << churn_prob);
  HM_CHECK_MSG(churn_dwell >= 1,
               "churn_dwell must be >= 1, got " << churn_dwell);
}

FaultPlan::FaultPlan(const FaultSpec& spec) : spec_(spec), root_(spec.seed) {
  spec_.validate();
}

bool FaultPlan::client_crashed(index_t round, index_t client) const {
  return enabled() && crashed_at(spec_.client_crash_round, round, client);
}

bool FaultPlan::edge_crashed(index_t round, index_t edge) const {
  return enabled() && crashed_at(spec_.edge_crash_round, round, edge);
}

bool FaultPlan::client_dropped(index_t round, index_t client) const {
  if (!enabled() || spec_.client_dropout_prob <= 0) return false;
  rng::Xoshiro256 gen = root_.split(kTagDrop)
                            .split(static_cast<std::uint64_t>(round))
                            .split(static_cast<std::uint64_t>(client));
  return gen.uniform() < spec_.client_dropout_prob;
}

bool FaultPlan::client_absent(index_t round, index_t client) const {
  if (!enabled() || spec_.churn_prob <= 0) return false;
  // One presence draw per dwell window, not per round, so a departed
  // client stays away for churn_dwell consecutive rounds.
  const std::uint64_t window =
      static_cast<std::uint64_t>(round) /
      static_cast<std::uint64_t>(spec_.churn_dwell);
  rng::Xoshiro256 gen = root_.split(kTagChurn)
                            .split(window)
                            .split(static_cast<std::uint64_t>(client));
  return gen.uniform() < spec_.churn_prob;
}

bool FaultPlan::client_attacker(index_t round, index_t client) const {
  if (!enabled() || spec_.attack == AttackKind::kNone ||
      spec_.attack_prob <= 0) {
    return false;
  }
  rng::Xoshiro256 gen = root_.split(kTagAttack)
                            .split(static_cast<std::uint64_t>(round))
                            .split(static_cast<std::uint64_t>(client));
  return gen.uniform() < spec_.attack_prob;
}

void FaultPlan::corrupt_payload(index_t round, index_t client,
                                const scalar_t* ref, scalar_t* payload,
                                index_t dim) const {
  if (!payload_attack()) return;
  if (spec_.attack == AttackKind::kSignFlip) {
    // Reflect the honest update around the broadcast model: the server
    // receives ref - scale * (payload - ref).
    const scalar_t s = static_cast<scalar_t>(spec_.attack_scale);
    for (index_t i = 0; i < dim; ++i) {
      payload[i] = ref[i] - s * (payload[i] - ref[i]);
    }
    return;
  }
  // Scaled noise: one private Gaussian stream per (round, client),
  // consumed in fixed index order so the corruption replays bit-exactly
  // regardless of thread schedule.
  rng::Xoshiro256 gen = root_.split(kTagNoise)
                            .split(static_cast<std::uint64_t>(round))
                            .split(static_cast<std::uint64_t>(client));
  const scalar_t s = static_cast<scalar_t>(spec_.attack_scale);
  for (index_t i = 0; i < dim; ++i) {
    payload[i] += s * static_cast<scalar_t>(gen.normal());
  }
}

double FaultPlan::straggler_mult(index_t round, index_t client) const {
  if (!enabled() || spec_.straggler_prob <= 0) return 1.0;
  rng::Xoshiro256 gen = root_.split(kTagStraggle)
                            .split(static_cast<std::uint64_t>(round))
                            .split(static_cast<std::uint64_t>(client));
  if (gen.uniform() >= spec_.straggler_prob) return 1.0;
  // Uniform[1, 2*mean - 1]: mean multiplier == straggler_mult_mean.
  return 1.0 + gen.uniform() * 2.0 * (spec_.straggler_mult_mean - 1.0);
}

bool FaultPlan::attempt_lost(index_t round, std::uint64_t msg,
                             index_t attempt) const {
  if (!enabled() || spec_.edge_loss_prob <= 0) return false;
  rng::Xoshiro256 gen = root_.split(kTagLoss)
                            .split(static_cast<std::uint64_t>(round))
                            .split(msg)
                            .split(static_cast<std::uint64_t>(attempt));
  return gen.uniform() < spec_.edge_loss_prob;
}

bool FaultPlan::deliver(index_t round, std::uint64_t msg,
                        LinkFaultStats& link) const {
  for (index_t attempt = 0; attempt <= spec_.max_retries; ++attempt) {
    link.attempted += 1;
    if (!attempt_lost(round, msg, attempt)) {
      link.delivered += 1;
      return true;
    }
    if (attempt < spec_.max_retries) {
      // Non-final loss: the retransmission costs exactly one extra
      // round-trip; the bandwidth term is not re-charged here because the
      // byte meters count offered traffic once per payload.
      link.in_retry += 1;
      link.extra_rtts += 1.0;
    } else {
      link.dropped += 1;
    }
  }
  return false;
}

}  // namespace hm::sim
