#include "sim/fault.hpp"

#include "core/check.hpp"

namespace hm::sim {

namespace {

// Stream-split tags for the fault plan's private RNG root (arbitrary
// distinct constants, ASCII mnemonics). They never collide with the
// algorithm layer's tags because the plan hangs off its own seed.
inline constexpr std::uint64_t kTagDrop = 0x64726f70;      // "drop"
inline constexpr std::uint64_t kTagStraggle = 0x73747267;  // "strg"
inline constexpr std::uint64_t kTagLoss = 0x6c6f7365;      // "lose"

/// crash_round[id] when present and nonnegative, else "never".
bool crashed_at(const std::vector<index_t>& schedule, index_t round,
                index_t id) {
  if (id < 0 || id >= static_cast<index_t>(schedule.size())) return false;
  const index_t at = schedule[static_cast<std::size_t>(id)];
  return at >= 0 && round >= at;
}

}  // namespace

void FaultSpec::validate() const {
  HM_CHECK_MSG(client_dropout_prob >= 0 && client_dropout_prob <= 1,
               "client_dropout_prob must be in [0,1], got "
                   << client_dropout_prob);
  HM_CHECK_MSG(straggler_prob >= 0 && straggler_prob <= 1,
               "straggler_prob must be in [0,1], got " << straggler_prob);
  HM_CHECK_MSG(straggler_mult_mean >= 1,
               "straggler_mult_mean must be >= 1, got " << straggler_mult_mean);
  HM_CHECK_MSG(edge_loss_prob >= 0 && edge_loss_prob <= 1,
               "edge_loss_prob must be in [0,1], got " << edge_loss_prob);
  HM_CHECK_MSG(max_retries >= 0,
               "max_retries must be >= 0, got " << max_retries);
}

FaultPlan::FaultPlan(const FaultSpec& spec) : spec_(spec), root_(spec.seed) {
  spec_.validate();
}

bool FaultPlan::client_crashed(index_t round, index_t client) const {
  return enabled() && crashed_at(spec_.client_crash_round, round, client);
}

bool FaultPlan::edge_crashed(index_t round, index_t edge) const {
  return enabled() && crashed_at(spec_.edge_crash_round, round, edge);
}

bool FaultPlan::client_dropped(index_t round, index_t client) const {
  if (!enabled() || spec_.client_dropout_prob <= 0) return false;
  rng::Xoshiro256 gen = root_.split(kTagDrop)
                            .split(static_cast<std::uint64_t>(round))
                            .split(static_cast<std::uint64_t>(client));
  return gen.uniform() < spec_.client_dropout_prob;
}

double FaultPlan::straggler_mult(index_t round, index_t client) const {
  if (!enabled() || spec_.straggler_prob <= 0) return 1.0;
  rng::Xoshiro256 gen = root_.split(kTagStraggle)
                            .split(static_cast<std::uint64_t>(round))
                            .split(static_cast<std::uint64_t>(client));
  if (gen.uniform() >= spec_.straggler_prob) return 1.0;
  // Uniform[1, 2*mean - 1]: mean multiplier == straggler_mult_mean.
  return 1.0 + gen.uniform() * 2.0 * (spec_.straggler_mult_mean - 1.0);
}

bool FaultPlan::attempt_lost(index_t round, std::uint64_t msg,
                             index_t attempt) const {
  if (!enabled() || spec_.edge_loss_prob <= 0) return false;
  rng::Xoshiro256 gen = root_.split(kTagLoss)
                            .split(static_cast<std::uint64_t>(round))
                            .split(msg)
                            .split(static_cast<std::uint64_t>(attempt));
  return gen.uniform() < spec_.edge_loss_prob;
}

bool FaultPlan::deliver(index_t round, std::uint64_t msg,
                        LinkFaultStats& link) const {
  for (index_t attempt = 0; attempt <= spec_.max_retries; ++attempt) {
    link.attempted += 1;
    if (!attempt_lost(round, msg, attempt)) {
      link.delivered += 1;
      return true;
    }
    if (attempt < spec_.max_retries) {
      // Non-final loss: the retransmission costs exactly one extra
      // round-trip; the bandwidth term is not re-charged here because the
      // byte meters count offered traffic once per payload.
      link.in_retry += 1;
      link.extra_rtts += 1.0;
    } else {
      link.dropped += 1;
    }
  }
  return false;
}

}  // namespace hm::sim
