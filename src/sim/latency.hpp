// Wall-clock cost model for the simulated network: translates the
// communication meters (CommStats) into an estimated training time under
// a configurable link profile. This quantifies the hierarchy's point —
// client-edge sync is cheap LAN traffic, edge-cloud sync is expensive
// WAN traffic — in seconds rather than abstract round counts.
//
// Model: each synchronization round on a link costs one round-trip
// latency; payload bytes stream at the link bandwidth. Transfers within
// one round are concurrent across devices, so bytes are divided by the
// number of parallel transfers (we approximate with the per-round mean).
// Fault injection (sim/fault.hpp) adds extra round-trips per link —
// one per retry attempt, (mult - 1) per straggler wait — accumulated in
// CommStats::*_fault.extra_rtts and charged once in the latency term.
#pragma once

#include "core/types.hpp"
#include "sim/comm.hpp"

namespace hm::sim {

struct LinkProfile {
  double latency_s = 0;         // round-trip setup cost per sync round
  double bandwidth_bps = 1e9;   // bits per second, per transfer
};

/// A two-segment network: LAN-ish client-edge links and WAN-ish
/// edge-cloud links. Defaults follow common mobile-edge-computing
/// assumptions (5 ms / 1 Gbps at the edge, 50 ms / 100 Mbps to the
/// cloud).
struct NetworkProfile {
  LinkProfile client_edge{0.005, 1e9};
  LinkProfile edge_cloud{0.050, 100e6};

  /// Estimated wall-clock seconds to carry the metered traffic.
  /// `concurrency` is the typical number of simultaneous transfers per
  /// round on each segment (e.g. m_E * N_0 clients upload in parallel);
  /// <= 0 defaults to fully-serial accounting.
  double seconds(const CommStats& comm, double concurrency = 1) const;
};

/// Per-segment breakdown of the same estimate.
struct TimeBreakdown {
  double client_edge_s = 0;
  double edge_cloud_s = 0;
  double total() const { return client_edge_s + edge_cloud_s; }
};

TimeBreakdown time_breakdown(const CommStats& comm,
                             const NetworkProfile& net,
                             double concurrency = 1);

}  // namespace hm::sim
