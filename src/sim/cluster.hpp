// Parallel execution harness for the simulated cluster: runs one job per
// (selected) client on the shared thread pool. Jobs receive the client id
// and must be mutually independent; determinism comes from per-client RNG
// streams, not from scheduling order.
#pragma once

#include <algorithm>
#include <functional>

#include "obs/obs.hpp"
#include "parallel/parallel_for.hpp"
#include "sim/topology.hpp"

namespace hm::sim {

class ClusterSim {
 public:
  explicit ClusterSim(parallel::ThreadPool& pool) : pool_(&pool) {}
  ClusterSim() : pool_(&parallel::ThreadPool::global()) {}

  parallel::ThreadPool& pool() const { return *pool_; }

  /// Devices per scheduled task. grain=0 picks a size-aware default:
  /// enough tasks to keep every worker busy with work-stealing headroom
  /// (~4 tasks per worker), but no finer — device jobs are coarse (a whole
  /// local-SGD run), so oversplitting only buys queue traffic. Explicit
  /// grain wins; jobs are independent, so grain never affects results.
  index_t device_grain(index_t count, index_t grain) const {
    if (grain > 0) return grain;
    const auto workers = static_cast<index_t>(pool_->num_threads());
    return std::max(index_t{1}, count / std::max(index_t{1}, workers * 4));
  }

  /// Run `job(i)` for i in [0, count) across the pool; each i is one
  /// simulated device doing local work. Blocks until all jobs finish and
  /// rethrows the first job exception.
  void run_devices(index_t count, const std::function<void(index_t)>& job,
                   index_t grain = 0) const {
    HM_OBS_SPAN("run_devices", "sim", count, 0);
    HM_OBS_INC("sim.device_batches");
    HM_OBS_ADD("sim.device_jobs", count);
    parallel::parallel_for(*pool_, 0, count, job,
                           device_grain(count, grain));
  }

  /// Fault-aware variant: devices that `plan` marks as offline at `round`
  /// (crashed, or churned out of the population) never run their job — an
  /// offline device computes nothing. Dropped and straggling devices
  /// still compute — their failures happen at report time and are the
  /// algorithm layer's concern.
  void run_devices(index_t count, const FaultPlan& plan, index_t round,
                   const std::function<void(index_t)>& job,
                   index_t grain = 0) const {
    if (!plan.enabled()) {
      run_devices(count, job, grain);
      return;
    }
    HM_OBS_SPAN("run_devices", "sim", count, round);
    HM_OBS_INC("sim.device_batches");
    HM_OBS_ADD("sim.device_jobs", count);
    parallel::parallel_for(
        *pool_, 0, count,
        [&](index_t i) {
          if (plan.client_offline(round, i)) return;
          job(i);
        },
        device_grain(count, grain));
  }

 private:
  parallel::ThreadPool* pool_;
};

}  // namespace hm::sim
