// Parallel execution harness for the simulated cluster: runs one job per
// (selected) client on the shared thread pool. Jobs receive the client id
// and must be mutually independent; determinism comes from per-client RNG
// streams, not from scheduling order.
#pragma once

#include <functional>

#include "parallel/parallel_for.hpp"
#include "sim/topology.hpp"

namespace hm::sim {

class ClusterSim {
 public:
  explicit ClusterSim(parallel::ThreadPool& pool) : pool_(&pool) {}
  ClusterSim() : pool_(&parallel::ThreadPool::global()) {}

  parallel::ThreadPool& pool() const { return *pool_; }

  /// Run `job(i)` for i in [0, count) across the pool; each i is one
  /// simulated device doing local work. Blocks until all jobs finish and
  /// rethrows the first job exception.
  void run_devices(index_t count, const std::function<void(index_t)>& job) const {
    parallel::parallel_for(*pool_, 0, count, job, /*grain=*/1);
  }

  /// Fault-aware variant: devices that `plan` marks as crashed at `round`
  /// never run their job (a crashed device computes nothing). Dropped and
  /// straggling devices still compute — their failures happen at report
  /// time and are the algorithm layer's concern.
  void run_devices(index_t count, const FaultPlan& plan, index_t round,
                   const std::function<void(index_t)>& job) const {
    if (!plan.enabled()) {
      run_devices(count, job);
      return;
    }
    parallel::parallel_for(
        *pool_, 0, count,
        [&](index_t i) {
          if (plan.client_crashed(round, i)) return;
          job(i);
        },
        /*grain=*/1);
  }

 private:
  parallel::ThreadPool* pool_;
};

}  // namespace hm::sim
