// Deterministic, splittable random number generation.
//
// All stochastic choices in this repo derive from one master seed through
// named stream splits (e.g. seed -> round k -> phase -> client n). A split
// hashes (state, tag) with splitmix64, so streams are independent of each
// other and of execution order — the property that makes parallel client
// simulation bit-identical to the serial schedule.
#pragma once

#include <array>
#include <cstdint>
#include <limits>

#include "core/types.hpp"

namespace hm::rng {

/// splitmix64 step: mixes a 64-bit state into a well-distributed output.
/// Public because seeding and stream splitting reuse it.
std::uint64_t splitmix64(std::uint64_t& state);

/// Complete serializable state of a Xoshiro256 stream: the 256-bit
/// xoshiro state plus the Box–Muller normal cache (without which a
/// restored stream would desynchronize after an odd number of normal()
/// draws). Used by the snapshot subsystem for bit-exact resume.
struct StreamState {
  std::array<std::uint64_t, 4> s{};
  bool has_cached_normal = false;
  double cached_normal = 0.0;
};

/// xoshiro256** 1.0 (Blackman & Vigna) — fast, 256-bit state, passes BigCrush.
/// Satisfies std::uniform_random_bit_generator.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(seed_t seed = 0x9e3779b97f4a7c15ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()();

  /// Derive an independent child generator from this generator's current
  /// state and a caller-chosen tag. Does not advance this generator, so
  /// split order across different tags is irrelevant.
  Xoshiro256 split(std::uint64_t tag) const;

  /// Uniform double in [0, 1) with 53 random bits.
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Standard normal via Box–Muller (uses the cached second variate).
  double normal();

  /// Normal with the given mean and standard deviation.
  double normal(double mean, double stddev);

  /// Uniform integer in [0, n) without modulo bias (Lemire rejection).
  std::uint64_t uniform_index(std::uint64_t n);

  /// Snapshot of the full generator state; set_state restores it exactly
  /// (the restored stream produces the identical remaining sequence).
  StreamState state() const;
  void set_state(const StreamState& state);

 private:
  std::array<std::uint64_t, 4> s_{};
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace hm::rng
