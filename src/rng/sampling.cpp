#include "rng/sampling.hpp"

#include <numeric>

#include "core/check.hpp"

namespace hm::rng {

std::vector<index_t> sample_without_replacement(index_t n, index_t k,
                                                Xoshiro256& gen) {
  HM_CHECK_MSG(0 <= k && k <= n, "k=" << k << " n=" << n);
  // Partial Fisher–Yates: O(n) setup, O(k) swaps.
  std::vector<index_t> pool(static_cast<std::size_t>(n));
  std::iota(pool.begin(), pool.end(), index_t{0});
  for (index_t i = 0; i < k; ++i) {
    const auto j = i + static_cast<index_t>(gen.uniform_index(
                           static_cast<std::uint64_t>(n - i)));
    std::swap(pool[i], pool[j]);
  }
  pool.resize(static_cast<std::size_t>(k));
  return pool;
}

index_t sample_weighted(const std::vector<scalar_t>& weights,
                        Xoshiro256& gen) {
  HM_CHECK(!weights.empty());
  scalar_t total = 0;
  for (const scalar_t w : weights) {
    HM_CHECK_MSG(w >= 0, "negative weight " << w);
    total += w;
  }
  HM_CHECK_MSG(total > 0, "all weights are zero");
  const scalar_t u = static_cast<scalar_t>(gen.uniform()) * total;
  scalar_t acc = 0;
  for (index_t i = 0; i < static_cast<index_t>(weights.size()); ++i) {
    acc += weights[static_cast<std::size_t>(i)];
    if (u < acc) return i;
  }
  return static_cast<index_t>(weights.size()) - 1;  // numerical edge
}

std::vector<index_t> sample_weighted_with_replacement(
    const std::vector<scalar_t>& weights, index_t k, Xoshiro256& gen) {
  HM_CHECK(k >= 0);
  std::vector<index_t> out;
  out.reserve(static_cast<std::size_t>(k));
  if (k >= 8) {
    const AliasTable table(weights);
    for (index_t i = 0; i < k; ++i) out.push_back(table.sample(gen));
  } else {
    for (index_t i = 0; i < k; ++i) out.push_back(sample_weighted(weights, gen));
  }
  return out;
}

AliasTable::AliasTable(const std::vector<scalar_t>& weights) {
  const index_t n = static_cast<index_t>(weights.size());
  HM_CHECK(n > 0);
  double total = 0;
  for (const scalar_t w : weights) {
    HM_CHECK_MSG(w >= 0, "negative weight " << w);
    total += static_cast<double>(w);
  }
  HM_CHECK_MSG(total > 0, "all weights are zero");

  prob_.assign(static_cast<std::size_t>(n), 0.0);
  alias_.assign(static_cast<std::size_t>(n), 0);
  std::vector<double> scaled(static_cast<std::size_t>(n));
  for (index_t i = 0; i < n; ++i) {
    scaled[static_cast<std::size_t>(i)] =
        static_cast<double>(weights[static_cast<std::size_t>(i)]) *
        static_cast<double>(n) / total;
  }
  std::vector<index_t> small, large;
  for (index_t i = 0; i < n; ++i) {
    (scaled[static_cast<std::size_t>(i)] < 1.0 ? small : large).push_back(i);
  }
  while (!small.empty() && !large.empty()) {
    const index_t s = small.back();
    small.pop_back();
    const index_t l = large.back();
    large.pop_back();
    prob_[static_cast<std::size_t>(s)] = scaled[static_cast<std::size_t>(s)];
    alias_[static_cast<std::size_t>(s)] = l;
    scaled[static_cast<std::size_t>(l)] -=
        1.0 - scaled[static_cast<std::size_t>(s)];
    (scaled[static_cast<std::size_t>(l)] < 1.0 ? small : large).push_back(l);
  }
  for (const index_t i : large) prob_[static_cast<std::size_t>(i)] = 1.0;
  for (const index_t i : small) prob_[static_cast<std::size_t>(i)] = 1.0;
}

index_t AliasTable::sample(Xoshiro256& gen) const {
  const auto column = static_cast<index_t>(
      gen.uniform_index(static_cast<std::uint64_t>(prob_.size())));
  return gen.uniform() < prob_[static_cast<std::size_t>(column)]
             ? column
             : alias_[static_cast<std::size_t>(column)];
}

}  // namespace hm::rng
