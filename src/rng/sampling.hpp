// Sampling primitives used by the federated algorithms: shuffles,
// uniform subsets (participation), weighted draws (edge sampling by p),
// and an alias table for repeated categorical sampling.
#pragma once

#include <vector>

#include "core/types.hpp"
#include "rng/rng.hpp"

namespace hm::rng {

/// In-place Fisher–Yates shuffle.
template <typename T>
void shuffle(std::vector<T>& items, Xoshiro256& gen) {
  for (index_t i = static_cast<index_t>(items.size()) - 1; i > 0; --i) {
    const auto j = static_cast<index_t>(
        gen.uniform_index(static_cast<std::uint64_t>(i) + 1));
    std::swap(items[i], items[j]);
  }
}

/// k distinct indices drawn uniformly from [0, n), in random order.
std::vector<index_t> sample_without_replacement(index_t n, index_t k,
                                                Xoshiro256& gen);

/// One index drawn from the (unnormalized, nonnegative) weights.
index_t sample_weighted(const std::vector<scalar_t>& weights, Xoshiro256& gen);

/// k indices drawn i.i.d. from the weights (with replacement). This is the
/// Phase-1 edge sampling of HierMinimax: averaging models of edges drawn
/// i.i.d. ~ p keeps the aggregate (Eq. 5) an unbiased estimate of
/// sum_e p_e w_e.
std::vector<index_t> sample_weighted_with_replacement(
    const std::vector<scalar_t>& weights, index_t k, Xoshiro256& gen);

/// Walker alias table: O(n) build, O(1) per draw. Used where the same
/// categorical distribution is sampled many times (e.g. label-noise
/// injection in dataset generation).
class AliasTable {
 public:
  explicit AliasTable(const std::vector<scalar_t>& weights);

  index_t sample(Xoshiro256& gen) const;

  index_t size() const { return static_cast<index_t>(prob_.size()); }

 private:
  std::vector<double> prob_;
  std::vector<index_t> alias_;
};

}  // namespace hm::rng
