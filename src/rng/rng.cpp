#include "rng/rng.hpp"

#include <cmath>

#include "core/check.hpp"

namespace hm::rng {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

namespace {

inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Xoshiro256::Xoshiro256(seed_t seed) {
  // Expand the seed into 256 bits of state; splitmix64 guarantees the
  // all-zero state (invalid for xoshiro) cannot occur.
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
}

Xoshiro256::result_type Xoshiro256::operator()() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

Xoshiro256 Xoshiro256::split(std::uint64_t tag) const {
  // Hash the full state with the tag so different tags give independent
  // children and children differ from the parent stream.
  std::uint64_t h = 0x8f21c2e1f259bca1ULL ^ tag;
  for (const std::uint64_t word : s_) {
    std::uint64_t mix = h ^ word;
    h = splitmix64(mix);
  }
  Xoshiro256 child;
  std::uint64_t sm = h;
  for (auto& word : child.s_) word = splitmix64(sm);
  child.has_cached_normal_ = false;
  return child;
}

double Xoshiro256::uniform() {
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Xoshiro256::uniform(double lo, double hi) {
  HM_CHECK(lo <= hi);
  return lo + (hi - lo) * uniform();
}

double Xoshiro256::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Box–Muller; u1 is kept away from zero to avoid log(0).
  double u1 = uniform();
  while (u1 <= 0.0) u1 = uniform();
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Xoshiro256::normal(double mean, double stddev) {
  HM_CHECK(stddev >= 0.0);
  return mean + stddev * normal();
}

std::uint64_t Xoshiro256::uniform_index(std::uint64_t n) {
  HM_CHECK(n > 0);
  // Lemire's multiply-shift with rejection for unbiased range reduction.
  std::uint64_t x = (*this)();
  __uint128_t m = static_cast<__uint128_t>(x) * n;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < n) {
    const std::uint64_t threshold = (0 - n) % n;
    while (lo < threshold) {
      x = (*this)();
      m = static_cast<__uint128_t>(x) * n;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

StreamState Xoshiro256::state() const {
  StreamState st;
  st.s = s_;
  st.has_cached_normal = has_cached_normal_;
  st.cached_normal = cached_normal_;
  return st;
}

void Xoshiro256::set_state(const StreamState& state) {
  // The all-zero state is the one point xoshiro cannot leave; it can only
  // come from a corrupted snapshot, never from a real stream.
  HM_CHECK_MSG(state.s[0] != 0 || state.s[1] != 0 || state.s[2] != 0 ||
                   state.s[3] != 0,
               "refusing to restore all-zero xoshiro256 state");
  s_ = state.s;
  has_cached_normal_ = state.has_cached_normal;
  cached_normal_ = state.cached_normal;
}

}  // namespace hm::rng
