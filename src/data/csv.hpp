// CSV dataset loading — the bridge to real data for users who have it
// (this repo's experiments run on synthetic generators because the
// environment is offline; see DESIGN.md §1).
//
// Format: one sample per line, comma-separated numeric features with the
// integer class label in the last column. Lines starting with '#' and
// blank lines are skipped; an optional non-numeric first line is treated
// as a header and skipped.
#pragma once

#include <string>

#include "data/dataset.hpp"

namespace hm::data {

/// Load a dataset from `path`. `num_classes` <= 0 infers it as
/// max(label) + 1. Throws CheckError on malformed rows, inconsistent
/// column counts, or out-of-range labels.
Dataset load_csv(const std::string& path, index_t num_classes = 0);

/// Write a dataset in the same format (features..., label).
void save_csv(const std::string& path, const Dataset& d);

}  // namespace hm::data
