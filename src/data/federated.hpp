// Federated views of a dataset: per-client training shards plus a held-out
// test set per edge area whose label mix matches that edge's training
// distribution (the paper evaluates "test accuracy of each edge area").
#pragma once

#include <vector>

#include "data/dataset.hpp"

namespace hm::data {

struct FederatedDataset {
  /// One training shard per client, indexed client-major: client
  /// n = e * clients_per_edge + i belongs to edge e.
  std::vector<Dataset> client_train;
  /// One test set per edge area, drawn from that edge's distribution.
  std::vector<Dataset> edge_test;
  index_t clients_per_edge = 0;

  index_t num_clients() const {
    return static_cast<index_t>(client_train.size());
  }
  index_t num_edges() const { return static_cast<index_t>(edge_test.size()); }
  index_t dim() const;
  index_t num_classes() const;
  index_t edge_of_client(index_t client) const {
    return client / clients_per_edge;
  }
  const Dataset& shard(index_t edge, index_t client_in_edge) const {
    return client_train[static_cast<std::size_t>(
        edge * clients_per_edge + client_in_edge)];
  }

  /// Concept drift: from `start_round` onward (until a later phase takes
  /// over), clients train on `client_train` of the phase and Phase-2
  /// loss estimation reads the phase's shards too, so the minimax
  /// weights track the *current* worst group. Recorded evaluation stays
  /// pinned to the base `edge_test` sets for a comparable trajectory.
  struct DriftPhase {
    index_t start_round = 0;
    std::vector<Dataset> client_train;
  };
  /// Ordered by start_round (add_drift_phase enforces it). Empty for the
  /// stationary case — every accessor below then returns the base shard.
  std::vector<DriftPhase> drift;

  /// Append a drift phase starting at `start_round` whose shard layout
  /// matches this dataset (same client count, dim, classes).
  void add_drift_phase(index_t start_round,
                       std::vector<Dataset> phase_client_train);

  /// The shard client n trains on in round k (base or drift phase).
  const Dataset& client_shard_at(index_t round, index_t client) const;

  /// Round-aware shard(edge, client_in_edge).
  const Dataset& shard_at(index_t round, index_t edge,
                          index_t client_in_edge) const {
    return client_shard_at(round, edge * clients_per_edge + client_in_edge);
  }

  void validate() const;
};

/// Paper §6.1 protocol: edge area e holds data of class e mod num_classes
/// only (train and test). Requires num_edges <= num_classes or wraps.
FederatedDataset partition_one_class_per_edge(const TrainTest& data,
                                              index_t num_edges,
                                              index_t clients_per_edge,
                                              rng::Xoshiro256& gen);

/// Paper §6.2 protocol (following SCAFFOLD [15]): each edge receives
/// s-fraction i.i.d. data and (1-s)-fraction sorted-by-label shards.
/// similarity s in [0, 1]. The per-edge test set is sampled from the global
/// test pool to match the edge's resulting train label distribution.
FederatedDataset partition_similarity(const TrainTest& data,
                                      index_t num_edges,
                                      index_t clients_per_edge,
                                      scalar_t similarity,
                                      rng::Xoshiro256& gen);

/// I.i.d. partition (control / sanity baseline).
FederatedDataset partition_iid(const TrainTest& data, index_t num_edges,
                               index_t clients_per_edge,
                               rng::Xoshiro256& gen);

/// Dirichlet label-skew partition (Hsu et al. protocol, the de-facto FL
/// heterogeneity benchmark): each edge draws class proportions
/// ~ Dir(alpha * 1) and fills its shard accordingly. alpha -> infinity
/// approaches i.i.d.; small alpha concentrates each edge on few classes.
FederatedDataset partition_dirichlet(const TrainTest& data,
                                     index_t num_edges,
                                     index_t clients_per_edge,
                                     scalar_t alpha, rng::Xoshiro256& gen);

/// One edge area per pre-made group dataset (Adult: Doctorate vs not;
/// Li-Synthetic: one device per edge). Each group is split into
/// clients_per_edge client shards and a test fraction.
FederatedDataset partition_by_group(const std::vector<Dataset>& groups,
                                    index_t clients_per_edge,
                                    scalar_t test_fraction,
                                    rng::Xoshiro256& gen);

}  // namespace hm::data
