// Supervised classification dataset container and basic manipulation.
#pragma once

#include <vector>

#include "rng/rng.hpp"
#include "tensor/matrix.hpp"

namespace hm::data {

/// Dense features + integer labels. Rows of `x` are samples.
struct Dataset {
  tensor::Matrix x;             // size() x dim()
  std::vector<index_t> y;       // labels in [0, num_classes)
  index_t num_classes = 0;

  index_t size() const { return static_cast<index_t>(y.size()); }
  index_t dim() const { return x.cols(); }

  /// Copy of the rows listed in `idx` (order preserved; repeats allowed).
  Dataset subset(const std::vector<index_t>& idx) const;

  /// Concatenate another dataset with identical dim/num_classes.
  void append(const Dataset& other);

  /// Internal consistency check (row count vs labels, label range).
  void validate() const;
};

/// Train/test pair drawn from the same distribution.
struct TrainTest {
  Dataset train;
  Dataset test;
};

/// Random split: each sample goes to test with probability test_fraction.
TrainTest split_train_test(const Dataset& all, double test_fraction,
                           rng::Xoshiro256& gen);

/// Label-flipped twin of `d`: features untouched, every label y mapped
/// to num_classes - 1 - y. Pure, so a cached flip of the same shard is
/// safe to reuse across rounds (the label-flip Byzantine attack).
Dataset flip_labels(const Dataset& d);

/// Indices of all samples with the given label.
std::vector<index_t> indices_of_class(const Dataset& d, index_t label);

/// Histogram of labels (length num_classes).
std::vector<index_t> label_histogram(const Dataset& d);

}  // namespace hm::data
