#include "data/generators.hpp"

#include <algorithm>
#include <cmath>

#include "core/check.hpp"
#include "rng/sampling.hpp"
#include "tensor/vecops.hpp"

namespace hm::data {

Dataset make_gaussian_classes(const GaussianSpec& spec) {
  HM_CHECK(spec.dim > 0 && spec.num_classes >= 2 && spec.num_samples > 0);
  HM_CHECK(0.0 <= spec.label_noise && spec.label_noise < 1.0);
  HM_CHECK(0.0 <= spec.difficulty_spread && spec.difficulty_spread < 1.0);
  HM_CHECK(spec.imbalance > 0.0);
  HM_CHECK(spec.hard_class_rotation >= 0);
  rng::Xoshiro256 gen(spec.seed);
  rng::Xoshiro256 mean_gen = gen.split(0x6d65616e);   // "mean"
  rng::Xoshiro256 sample_gen = gen.split(0x73616d70); // "samp"

  // Class means: random Gaussian directions normalized to `separation`,
  // then shrunk toward the origin for high-index (hard) classes so the
  // hard classes crowd together and become mutually confusable.
  const auto denom =
      static_cast<scalar_t>(std::max<index_t>(1, spec.num_classes - 1));
  // Drift rotation: hardness/rarity of class c is read off the rotated
  // index, so the worst group moves without touching the mean draws.
  const auto hard_frac = [&](index_t c) {
    const index_t rot = (c + spec.hard_class_rotation) % spec.num_classes;
    return static_cast<scalar_t>(rot) / denom;
  };
  tensor::Matrix means(spec.num_classes, spec.dim);
  for (index_t c = 0; c < spec.num_classes; ++c) {
    auto row = means.row(c);
    for (auto& v : row) v = mean_gen.normal();
    const scalar_t shrink = 1 - spec.difficulty_spread * hard_frac(c);
    const scalar_t norm = tensor::nrm2(row);
    tensor::scale(spec.separation * shrink / norm, row);
  }

  // Sampling weights (imbalance): high-index classes are rarer.
  std::vector<scalar_t> class_weight(
      static_cast<std::size_t>(spec.num_classes));
  for (index_t c = 0; c < spec.num_classes; ++c) {
    class_weight[static_cast<std::size_t>(c)] =
        std::pow(spec.imbalance, -hard_frac(c));
  }
  const rng::AliasTable label_table(class_weight);

  Dataset out;
  out.num_classes = spec.num_classes;
  out.x.resize(spec.num_samples, spec.dim);
  out.y.resize(static_cast<std::size_t>(spec.num_samples));
  for (index_t i = 0; i < spec.num_samples; ++i) {
    const index_t label = label_table.sample(sample_gen);
    auto row = out.x.row(i);
    tensor::copy(means.row(label), row);
    for (auto& v : row) v += sample_gen.normal(0.0, spec.within_std);
    index_t observed = label;
    if (spec.label_noise > 0 && sample_gen.uniform() < spec.label_noise) {
      observed = static_cast<index_t>(sample_gen.uniform_index(
          static_cast<std::uint64_t>(spec.num_classes)));
    }
    out.y[static_cast<std::size_t>(i)] = observed;
  }
  return out;
}

GaussianSpec mnist_like_spec(index_t num_samples, seed_t seed) {
  GaussianSpec spec;
  spec.num_samples = num_samples;
  spec.seed = seed;
  spec.separation = 3.6;
  spec.within_std = 1.0;
  spec.label_noise = 0.01;
  spec.difficulty_spread = 0.35;  // digits differ in hardness (1 vs 8)
  spec.imbalance = 1.5;
  return spec;
}

GaussianSpec emnist_digits_like_spec(index_t num_samples, seed_t seed) {
  GaussianSpec spec;
  spec.num_samples = num_samples;
  spec.seed = seed;
  spec.separation = 3.2;
  spec.within_std = 1.0;
  spec.label_noise = 0.02;
  spec.difficulty_spread = 0.40;
  spec.imbalance = 2.0;
  return spec;
}

GaussianSpec fashion_like_spec(index_t num_samples, seed_t seed) {
  GaussianSpec spec;
  spec.num_samples = num_samples;
  spec.seed = seed;
  spec.separation = 3.0;
  spec.within_std = 1.0;
  spec.label_noise = 0.03;
  spec.difficulty_spread = 0.55;  // shirts/pullovers/coats crowd together
  spec.imbalance = 3.0;           // and are under-represented in training
  return spec;
}

std::vector<Dataset> make_li_synthetic(const LiSyntheticSpec& spec) {
  HM_CHECK(spec.num_devices > 0 && spec.dim > 0 && spec.num_classes >= 2);
  rng::Xoshiro256 root(spec.seed);

  // Diagonal covariance Sigma_jj = (j+1)^{-1.2} (as in the original code).
  std::vector<scalar_t> sigma(static_cast<std::size_t>(spec.dim));
  for (index_t j = 0; j < spec.dim; ++j) {
    sigma[static_cast<std::size_t>(j)] =
        std::pow(static_cast<scalar_t>(j + 1), scalar_t(-1.2));
  }

  std::vector<Dataset> devices;
  devices.reserve(static_cast<std::size_t>(spec.num_devices));
  for (index_t k = 0; k < spec.num_devices; ++k) {
    rng::Xoshiro256 gen = root.split(static_cast<std::uint64_t>(k));
    const scalar_t u_k = gen.normal(0.0, std::sqrt(spec.alpha));
    const scalar_t b_mean = gen.normal(0.0, std::sqrt(spec.beta));

    // Ground-truth model for this device.
    tensor::Matrix w_k(spec.num_classes, spec.dim);
    std::vector<scalar_t> b_k(static_cast<std::size_t>(spec.num_classes));
    for (auto& v : w_k.flat()) v = gen.normal(u_k, 1.0);
    for (auto& v : b_k) v = gen.normal(u_k, 1.0);

    // Feature center v_k.
    std::vector<scalar_t> center(static_cast<std::size_t>(spec.dim));
    for (auto& v : center) v = gen.normal(b_mean, 1.0);

    // Sample count ~ lognormal, floored at min_samples (Li et al. use
    // lognormal(4, 2) + 50; we parameterize the location by mean_samples).
    const double log_mean = std::log(static_cast<double>(
        std::max<index_t>(1, spec.mean_samples - spec.min_samples)));
    const auto extra = static_cast<index_t>(
        std::llround(std::exp(gen.normal(log_mean, 0.75))));
    const index_t n_k = spec.min_samples + std::max<index_t>(0, extra);

    Dataset d;
    d.num_classes = spec.num_classes;
    d.x.resize(n_k, spec.dim);
    d.y.resize(static_cast<std::size_t>(n_k));
    std::vector<scalar_t> logits(static_cast<std::size_t>(spec.num_classes));
    for (index_t i = 0; i < n_k; ++i) {
      auto row = d.x.row(i);
      for (index_t j = 0; j < spec.dim; ++j) {
        row[static_cast<std::size_t>(j)] = gen.normal(
            center[static_cast<std::size_t>(j)],
            std::sqrt(sigma[static_cast<std::size_t>(j)]));
      }
      for (index_t c = 0; c < spec.num_classes; ++c) {
        logits[static_cast<std::size_t>(c)] =
            tensor::dot(w_k.row(c), row) + b_k[static_cast<std::size_t>(c)];
      }
      d.y[static_cast<std::size_t>(i)] =
          tensor::argmax(tensor::ConstVecView(logits));
    }
    devices.push_back(std::move(d));
  }
  return devices;
}

namespace {

Dataset make_adult_group(const AdultLikeSpec& spec, index_t group,
                         index_t num_samples, rng::Xoshiro256& gen,
                         const std::vector<scalar_t>& base_coef) {
  const index_t dim = spec.categorical_features * spec.levels_per_feature + 2;
  Dataset d;
  d.num_classes = 2;
  d.x.resize(num_samples, dim);
  d.y.resize(static_cast<std::size_t>(num_samples));

  // Group-specific coefficient perturbation: the Doctorate group's
  // income depends differently on the same features.
  std::vector<scalar_t> coef = base_coef;
  if (group == 1) {
    rng::Xoshiro256 shift_gen = gen.split(0x73686966);
    for (auto& c : coef) c += shift_gen.normal(0.0, spec.group_shift * 0.5);
  }
  const scalar_t intercept = group == 1 ? scalar_t(0.8) : scalar_t(-1.0);

  for (index_t i = 0; i < num_samples; ++i) {
    auto row = d.x.row(i);
    tensor::set_zero(row);
    // One-hot categorical features; level distribution depends on group
    // (minority group skews toward higher levels — e.g. education).
    for (index_t f = 0; f < spec.categorical_features; ++f) {
      double u = gen.uniform();
      if (group == 1) u = std::sqrt(u);  // skew toward high levels
      const auto level = static_cast<index_t>(
          u * static_cast<double>(spec.levels_per_feature));
      const index_t col = f * spec.levels_per_feature +
                          std::min(level, spec.levels_per_feature - 1);
      row[static_cast<std::size_t>(col)] = 1.0;
    }
    // Two numeric features (age-like, hours-like), standardized.
    row[static_cast<std::size_t>(dim - 2)] = gen.normal();
    row[static_cast<std::size_t>(dim - 1)] =
        gen.normal(group == 1 ? 0.5 : 0.0, 1.0);

    scalar_t logit = intercept;
    for (index_t j = 0; j < dim; ++j) {
      logit += coef[static_cast<std::size_t>(j)] *
               row[static_cast<std::size_t>(j)];
    }
    const double prob = 1.0 / (1.0 + std::exp(-logit));
    d.y[static_cast<std::size_t>(i)] = gen.uniform() < prob ? 1 : 0;
  }
  return d;
}

}  // namespace

std::vector<Dataset> make_adult_like(const AdultLikeSpec& spec) {
  HM_CHECK(spec.num_samples_group0 > 0 && spec.num_samples_group1 > 0);
  rng::Xoshiro256 root(spec.seed);
  const index_t dim = spec.categorical_features * spec.levels_per_feature + 2;
  std::vector<scalar_t> base_coef(static_cast<std::size_t>(dim));
  rng::Xoshiro256 coef_gen = root.split(0x636f6566);
  for (auto& c : base_coef) c = coef_gen.normal(0.0, 1.0);

  rng::Xoshiro256 g0 = root.split(0);
  rng::Xoshiro256 g1 = root.split(1);
  std::vector<Dataset> groups;
  groups.push_back(
      make_adult_group(spec, 0, spec.num_samples_group0, g0, base_coef));
  groups.push_back(
      make_adult_group(spec, 1, spec.num_samples_group1, g1, base_coef));
  return groups;
}

}  // namespace hm::data
