// Synthetic dataset generators standing in for the paper's real datasets
// (see DESIGN.md §1 for the substitution rationale). Each generator is
// fully deterministic given its seed.
#pragma once

#include <vector>

#include "data/dataset.hpp"

namespace hm::data {

/// Gaussian class-cluster classification task. Class means are random
/// directions scaled by `separation`; samples add isotropic noise of
/// std `within_std`; a `label_noise` fraction of labels is resampled
/// uniformly. Lowering separation / raising noise makes the task harder,
/// which is how we emulate MNIST vs Fashion-MNIST difficulty.
struct GaussianSpec {
  index_t dim = 64;
  index_t num_classes = 10;
  index_t num_samples = 6000;
  scalar_t separation = 3.0;
  scalar_t within_std = 1.0;
  scalar_t label_noise = 0.0;
  /// Per-class difficulty gradient: class c's mean is shrunk toward the
  /// origin by factor (1 - spread * c / (C-1)), so high-index classes sit
  /// close to *each other* — confusable, but still separable by a model
  /// that allocates attention to them (like shirt/pullover/coat in
  /// Fashion-MNIST). This "fixable" hardness is what makes minimax
  /// weighting matter; pure extra noise would only raise the loss floor.
  scalar_t difficulty_spread = 0.0;
  /// Class imbalance: class c's sampling weight is
  /// imbalance^(c / (C-1)); 1.0 = balanced. Values > 1 make high-index
  /// classes (which are also the hard ones) rarer.
  scalar_t imbalance = 1.0;
  /// Concept-drift knob: rotates which classes are the hard/rare ones.
  /// The difficulty-shrink and imbalance fractions for class c are
  /// computed at index (c + hard_class_rotation) mod C, everything else
  /// (class means, sample noise) untouched — so regenerating with a
  /// nonzero rotation moves the worst group to a different class while
  /// keeping the task recognizably the same. 0 is bit-identical to the
  /// pre-rotation generator.
  index_t hard_class_rotation = 0;
  seed_t seed = 7;
};

Dataset make_gaussian_classes(const GaussianSpec& spec);

/// Difficulty presets calibrated so multinomial logistic regression lands
/// near the paper's accuracy regimes (~92% MNIST-like, ~90% EMNIST-Digits-
/// like, ~80% Fashion-MNIST-like).
GaussianSpec mnist_like_spec(index_t num_samples = 6000, seed_t seed = 7);
GaussianSpec emnist_digits_like_spec(index_t num_samples = 6000,
                                     seed_t seed = 11);
GaussianSpec fashion_like_spec(index_t num_samples = 6000, seed_t seed = 13);

/// The Synthetic(alpha, beta) generator of Li et al., "Fair Resource
/// Allocation in Federated Learning" (ICLR'20), reimplemented faithfully:
/// device k draws u_k ~ N(0, alpha), B_k ~ N(0, beta); its ground-truth
/// model W_k, b_k has N(u_k, 1) entries; features x ~ N(v_k, Sigma) with
/// v_k[j] ~ N(B_k, 1) and Sigma = diag(j^{-1.2}); labels are
/// argmax softmax(W_k x + b_k). alpha controls model heterogeneity, beta
/// controls feature heterogeneity.
struct LiSyntheticSpec {
  scalar_t alpha = 1.0;
  scalar_t beta = 1.0;
  index_t num_devices = 100;
  index_t dim = 60;
  index_t num_classes = 10;
  index_t min_samples = 50;     // per-device sample counts ~ lognormal,
  index_t mean_samples = 100;   // clipped below at min_samples
  seed_t seed = 17;
};

/// One dataset per device (device == edge area in the paper's Table 2 row).
std::vector<Dataset> make_li_synthetic(const LiSyntheticSpec& spec);

/// Adult-like two-group tabular binary task (salary prediction). Group 1
/// emulates the small "Doctorate" population: different logistic
/// coefficients and base rate than group 0, one-hot categorical features.
struct AdultLikeSpec {
  index_t num_samples_group0 = 8000;  // non-Doctorate (majority)
  index_t num_samples_group1 = 500;   // Doctorate (minority)
  index_t categorical_features = 6;
  index_t levels_per_feature = 5;
  scalar_t group_shift = 4.0;         // coefficient shift between groups
  seed_t seed = 23;
};

/// Returns {group0, group1}; each group becomes one edge area.
std::vector<Dataset> make_adult_like(const AdultLikeSpec& spec);

}  // namespace hm::data
