#include "data/csv.hpp"

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <vector>

#include "core/check.hpp"
#include "tensor/vecops.hpp"

namespace hm::data {

namespace {

/// Split a CSV line; returns false for comment/blank lines.
bool split_line(const std::string& line, std::vector<std::string>& out) {
  out.clear();
  if (line.empty() || line[0] == '#') return false;
  std::stringstream ss(line);
  std::string cell;
  while (std::getline(ss, cell, ',')) out.push_back(cell);
  return !out.empty();
}

bool parse_number(const std::string& cell, double& value) {
  char* end = nullptr;
  value = std::strtod(cell.c_str(), &end);
  // Allow surrounding whitespace; require at least one consumed char.
  if (end == cell.c_str()) return false;
  while (*end == ' ' || *end == '\t' || *end == '\r') ++end;
  return *end == '\0';
}

}  // namespace

Dataset load_csv(const std::string& path, index_t num_classes) {
  std::ifstream in(path);
  HM_CHECK_MSG(in.good(), "cannot open '" << path << "'");

  std::vector<std::vector<double>> rows;
  std::vector<index_t> labels;
  std::string line;
  std::vector<std::string> cells;
  index_t line_no = 0;
  index_t dim = -1;
  bool first_content_line = true;
  while (std::getline(in, line)) {
    ++line_no;
    if (!split_line(line, cells)) continue;
    std::vector<double> values(cells.size());
    bool numeric = true;
    for (std::size_t i = 0; i < cells.size(); ++i) {
      if (!parse_number(cells[i], values[i])) {
        numeric = false;
        break;
      }
    }
    if (!numeric) {
      // Tolerate one header line at the top only.
      HM_CHECK_MSG(first_content_line,
                   "non-numeric cell at line " << line_no << " of '" << path
                                               << "'");
      first_content_line = false;
      continue;
    }
    first_content_line = false;
    HM_CHECK_MSG(values.size() >= 2,
                 "line " << line_no << " needs >= 1 feature + label");
    if (dim < 0) {
      dim = static_cast<index_t>(values.size()) - 1;
    } else {
      HM_CHECK_MSG(static_cast<index_t>(values.size()) - 1 == dim,
                   "line " << line_no << " has " << values.size() - 1
                           << " features, expected " << dim);
    }
    const double label_raw = values.back();
    const auto label = static_cast<index_t>(label_raw);
    HM_CHECK_MSG(static_cast<double>(label) == label_raw && label >= 0,
                 "line " << line_no << " label " << label_raw
                         << " is not a nonnegative integer");
    values.pop_back();
    rows.push_back(std::move(values));
    labels.push_back(label);
  }
  HM_CHECK_MSG(!rows.empty(), "'" << path << "' contains no samples");

  Dataset d;
  d.num_classes = num_classes > 0
                      ? num_classes
                      : *std::max_element(labels.begin(), labels.end()) + 1;
  d.num_classes = std::max<index_t>(d.num_classes, 2);
  d.x.resize(static_cast<index_t>(rows.size()), dim);
  d.y = std::move(labels);
  for (index_t r = 0; r < static_cast<index_t>(rows.size()); ++r) {
    for (index_t c = 0; c < dim; ++c) {
      d.x(r, c) = static_cast<scalar_t>(
          rows[static_cast<std::size_t>(r)][static_cast<std::size_t>(c)]);
    }
  }
  d.validate();
  return d;
}

void save_csv(const std::string& path, const Dataset& d) {
  d.validate();
  // Plain-text export, not a durable artifact: hm_data sits below hm_io
  // in the layering (io -> metrics -> data), so routing this through
  // io::atomic_write_file would create a dependency cycle.
  // detlint: allow(direct-persistence)
  std::ofstream out(path, std::ios::trunc);
  HM_CHECK_MSG(out.good(), "cannot open '" << path << "' for writing");
  out.precision(17);
  for (index_t r = 0; r < d.size(); ++r) {
    for (index_t c = 0; c < d.dim(); ++c) out << d.x(r, c) << ',';
    out << d.y[static_cast<std::size_t>(r)] << '\n';
  }
  HM_CHECK_MSG(out.good(), "write to '" << path << "' failed");
}

}  // namespace hm::data
