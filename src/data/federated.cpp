#include "data/federated.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "core/check.hpp"
#include "rng/sampling.hpp"

namespace hm::data {

index_t FederatedDataset::dim() const {
  HM_CHECK(!client_train.empty());
  return client_train.front().dim();
}

index_t FederatedDataset::num_classes() const {
  HM_CHECK(!client_train.empty());
  return client_train.front().num_classes;
}

void FederatedDataset::validate() const {
  HM_CHECK(clients_per_edge > 0);
  HM_CHECK(num_clients() == num_edges() * clients_per_edge);
  const index_t d = dim();
  const index_t c = num_classes();
  for (const auto& shard_data : client_train) {
    HM_CHECK(shard_data.dim() == d && shard_data.num_classes == c);
    HM_CHECK_MSG(shard_data.size() > 0, "empty client shard");
    shard_data.validate();
  }
  for (const auto& test : edge_test) {
    HM_CHECK(test.dim() == d && test.num_classes == c);
    HM_CHECK_MSG(test.size() > 0, "empty edge test set");
    test.validate();
  }
  for (const auto& phase : drift) {
    for (const auto& shard_data : phase.client_train) {
      HM_CHECK(shard_data.dim() == d && shard_data.num_classes == c);
      HM_CHECK_MSG(shard_data.size() > 0, "empty drift-phase client shard");
      shard_data.validate();
    }
  }
}

void FederatedDataset::add_drift_phase(
    index_t start_round, std::vector<Dataset> phase_client_train) {
  HM_CHECK_MSG(start_round >= 1,
               "drift phases start at round >= 1 (round 0 is the base "
               "distribution), got " << start_round);
  HM_CHECK_MSG(drift.empty() || drift.back().start_round < start_round,
               "drift phases must be added in increasing start_round order");
  HM_CHECK_MSG(static_cast<index_t>(phase_client_train.size()) ==
                   num_clients(),
               "drift phase has " << phase_client_train.size()
                                  << " shards, dataset has " << num_clients()
                                  << " clients");
  const index_t d = dim();
  const index_t c = num_classes();
  for (const auto& shard_data : phase_client_train) {
    HM_CHECK(shard_data.dim() == d && shard_data.num_classes == c);
    HM_CHECK_MSG(shard_data.size() > 0, "empty drift-phase client shard");
  }
  drift.push_back(DriftPhase{start_round, std::move(phase_client_train)});
}

const Dataset& FederatedDataset::client_shard_at(index_t round,
                                                 index_t client) const {
  // Latest phase with start_round <= round wins; phases are ordered, so
  // scan from the back (drift lists are short).
  for (auto it = drift.rbegin(); it != drift.rend(); ++it) {
    if (it->start_round <= round) {
      return it->client_train[static_cast<std::size_t>(client)];
    }
  }
  return client_train[static_cast<std::size_t>(client)];
}

namespace {

/// Deal `idx` round-robin into `num_shards` equal-ish shards of `source`.
std::vector<Dataset> deal_into_shards(const Dataset& source,
                                      std::vector<index_t> idx,
                                      index_t num_shards) {
  HM_CHECK_MSG(static_cast<index_t>(idx.size()) >= num_shards,
               "need >= " << num_shards << " samples, have " << idx.size());
  std::vector<std::vector<index_t>> per_shard(
      static_cast<std::size_t>(num_shards));
  for (index_t i = 0; i < static_cast<index_t>(idx.size()); ++i) {
    per_shard[static_cast<std::size_t>(i % num_shards)].push_back(
        idx[static_cast<std::size_t>(i)]);
  }
  std::vector<Dataset> shards;
  shards.reserve(static_cast<std::size_t>(num_shards));
  for (const auto& s : per_shard) shards.push_back(source.subset(s));
  return shards;
}

/// Sample a test set from `pool` whose label mix matches `target_hist`
/// (counts per label). Falls back to sampling with replacement within a
/// label if the pool runs short.
Dataset matched_test_set(const Dataset& pool,
                         const std::vector<index_t>& target_hist,
                         index_t total_test, rng::Xoshiro256& gen) {
  const index_t total_target =
      std::accumulate(target_hist.begin(), target_hist.end(), index_t{0});
  HM_CHECK(total_target > 0 && total_test > 0);
  std::vector<std::vector<index_t>> by_class(
      static_cast<std::size_t>(pool.num_classes));
  for (index_t i = 0; i < pool.size(); ++i) {
    by_class[static_cast<std::size_t>(pool.y[static_cast<std::size_t>(i)])]
        .push_back(i);
  }
  std::vector<index_t> chosen;
  for (index_t c = 0; c < pool.num_classes; ++c) {
    const auto& candidates = by_class[static_cast<std::size_t>(c)];
    const index_t want = (target_hist[static_cast<std::size_t>(c)] *
                          total_test + total_target / 2) / total_target;
    if (want == 0) continue;
    HM_CHECK_MSG(!candidates.empty(),
                 "test pool has no samples of class " << c);
    if (want <= static_cast<index_t>(candidates.size())) {
      auto picks = rng::sample_without_replacement(
          static_cast<index_t>(candidates.size()), want, gen);
      for (const index_t p : picks) {
        chosen.push_back(candidates[static_cast<std::size_t>(p)]);
      }
    } else {
      for (index_t i = 0; i < want; ++i) {
        chosen.push_back(candidates[static_cast<std::size_t>(
            gen.uniform_index(candidates.size()))]);
      }
    }
  }
  HM_CHECK(!chosen.empty());
  return pool.subset(chosen);
}

}  // namespace

FederatedDataset partition_one_class_per_edge(const TrainTest& data,
                                              index_t num_edges,
                                              index_t clients_per_edge,
                                              rng::Xoshiro256& gen) {
  HM_CHECK(num_edges > 0 && clients_per_edge > 0);
  FederatedDataset fed;
  fed.clients_per_edge = clients_per_edge;
  for (index_t e = 0; e < num_edges; ++e) {
    const index_t label = e % data.train.num_classes;
    auto train_idx = indices_of_class(data.train, label);
    rng::shuffle(train_idx, gen);
    auto shards = deal_into_shards(data.train, std::move(train_idx),
                                   clients_per_edge);
    for (auto& s : shards) fed.client_train.push_back(std::move(s));

    const auto test_idx = indices_of_class(data.test, label);
    HM_CHECK_MSG(!test_idx.empty(), "no test samples of class " << label);
    fed.edge_test.push_back(data.test.subset(test_idx));
  }
  fed.validate();
  return fed;
}

FederatedDataset partition_similarity(const TrainTest& data,
                                      index_t num_edges,
                                      index_t clients_per_edge,
                                      scalar_t similarity,
                                      rng::Xoshiro256& gen) {
  HM_CHECK(num_edges > 0 && clients_per_edge > 0);
  HM_CHECK_MSG(0.0 <= similarity && similarity <= 1.0,
               "similarity=" << similarity);
  const index_t n = data.train.size();
  HM_CHECK(n >= num_edges * clients_per_edge);

  // Split sample indices into an i.i.d. pool (s-fraction) and a sorted
  // pool ((1-s)-fraction), as in SCAFFOLD's similarity protocol.
  std::vector<index_t> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), index_t{0});
  rng::shuffle(order, gen);
  const index_t iid_count =
      static_cast<index_t>(similarity * static_cast<scalar_t>(n));
  std::vector<index_t> iid_pool(order.begin(), order.begin() + iid_count);
  std::vector<index_t> sorted_pool(order.begin() + iid_count, order.end());
  std::sort(sorted_pool.begin(), sorted_pool.end(),
            [&](index_t a, index_t b) {
              return data.train.y[static_cast<std::size_t>(a)] <
                     data.train.y[static_cast<std::size_t>(b)];
            });

  // Each edge gets a contiguous slice of the sorted pool (label-skewed)
  // plus an equal share of the i.i.d. pool.
  FederatedDataset fed;
  fed.clients_per_edge = clients_per_edge;
  for (index_t e = 0; e < num_edges; ++e) {
    std::vector<index_t> edge_idx;
    const index_t iid_lo = e * iid_count / num_edges;
    const index_t iid_hi = (e + 1) * iid_count / num_edges;
    edge_idx.insert(edge_idx.end(), iid_pool.begin() + iid_lo,
                    iid_pool.begin() + iid_hi);
    const index_t sorted_n = static_cast<index_t>(sorted_pool.size());
    const index_t sorted_lo = e * sorted_n / num_edges;
    const index_t sorted_hi = (e + 1) * sorted_n / num_edges;
    edge_idx.insert(edge_idx.end(), sorted_pool.begin() + sorted_lo,
                    sorted_pool.begin() + sorted_hi);
    rng::shuffle(edge_idx, gen);

    // Edge train label histogram drives the matched test set.
    std::vector<index_t> hist(
        static_cast<std::size_t>(data.train.num_classes), 0);
    for (const index_t i : edge_idx) {
      ++hist[static_cast<std::size_t>(
          data.train.y[static_cast<std::size_t>(i)])];
    }
    const index_t test_size =
        std::max<index_t>(64, data.test.size() / num_edges);
    fed.edge_test.push_back(
        matched_test_set(data.test, hist, test_size, gen));

    auto shards =
        deal_into_shards(data.train, std::move(edge_idx), clients_per_edge);
    for (auto& s : shards) fed.client_train.push_back(std::move(s));
  }
  fed.validate();
  return fed;
}

FederatedDataset partition_iid(const TrainTest& data, index_t num_edges,
                               index_t clients_per_edge,
                               rng::Xoshiro256& gen) {
  return partition_similarity(data, num_edges, clients_per_edge,
                              /*similarity=*/1.0, gen);
}

FederatedDataset partition_dirichlet(const TrainTest& data,
                                     index_t num_edges,
                                     index_t clients_per_edge,
                                     scalar_t alpha, rng::Xoshiro256& gen) {
  HM_CHECK(num_edges > 0 && clients_per_edge > 0);
  HM_CHECK_MSG(alpha > 0, "Dirichlet alpha must be positive");
  const index_t num_classes = data.train.num_classes;

  // Per-edge class proportions ~ Dir(alpha): draw Gamma(alpha, 1) via
  // the Marsaglia-Tsang method (with the alpha < 1 boost) and normalize.
  auto gamma_draw = [&gen](scalar_t shape) {
    scalar_t boost = 1;
    if (shape < 1) {
      boost = std::pow(static_cast<scalar_t>(gen.uniform()),
                       scalar_t{1} / shape);
      shape += 1;
    }
    const scalar_t d = shape - scalar_t{1} / 3;
    const scalar_t c = 1 / std::sqrt(9 * d);
    for (;;) {
      scalar_t x = gen.normal();
      scalar_t v = 1 + c * x;
      if (v <= 0) continue;
      v = v * v * v;
      const scalar_t u = static_cast<scalar_t>(gen.uniform());
      if (u < 1 - scalar_t{0.0331} * x * x * x * x) return boost * d * v;
      if (std::log(u) < scalar_t{0.5} * x * x + d * (1 - v + std::log(v))) {
        return boost * d * v;
      }
    }
  };

  // Deal samples class by class: each class's samples are split across
  // edges proportionally to the edges' Dirichlet weights for that class.
  std::vector<std::vector<scalar_t>> proportions(
      static_cast<std::size_t>(num_edges));
  for (auto& row : proportions) {
    row.resize(static_cast<std::size_t>(num_classes));
    for (auto& v : row) v = std::max<scalar_t>(gamma_draw(alpha), 1e-12);
    scalar_t total = 0;
    for (const scalar_t v : row) total += v;
    for (auto& v : row) v /= total;
  }

  std::vector<std::vector<index_t>> edge_idx(
      static_cast<std::size_t>(num_edges));
  for (index_t c = 0; c < num_classes; ++c) {
    auto members = indices_of_class(data.train, c);
    rng::shuffle(members, gen);
    // Weight of edge e for class c, normalized over edges.
    std::vector<scalar_t> w(static_cast<std::size_t>(num_edges));
    scalar_t total = 0;
    for (index_t e = 0; e < num_edges; ++e) {
      w[static_cast<std::size_t>(e)] =
          proportions[static_cast<std::size_t>(e)][static_cast<std::size_t>(c)];
      total += w[static_cast<std::size_t>(e)];
    }
    index_t start = 0;
    scalar_t cum = 0;
    for (index_t e = 0; e < num_edges; ++e) {
      cum += w[static_cast<std::size_t>(e)] / total;
      const auto stop = static_cast<index_t>(std::llround(
          cum * static_cast<scalar_t>(members.size())));
      for (index_t i = start; i < stop; ++i) {
        edge_idx[static_cast<std::size_t>(e)].push_back(
            members[static_cast<std::size_t>(i)]);
      }
      start = stop;
    }
  }

  FederatedDataset fed;
  fed.clients_per_edge = clients_per_edge;
  for (index_t e = 0; e < num_edges; ++e) {
    auto& idx = edge_idx[static_cast<std::size_t>(e)];
    HM_CHECK_MSG(static_cast<index_t>(idx.size()) >= clients_per_edge,
                 "edge " << e << " drew only " << idx.size()
                         << " samples; raise alpha or sample count");
    rng::shuffle(idx, gen);

    std::vector<index_t> hist(static_cast<std::size_t>(num_classes), 0);
    for (const index_t i : idx) {
      ++hist[static_cast<std::size_t>(
          data.train.y[static_cast<std::size_t>(i)])];
    }
    const index_t test_size =
        std::max<index_t>(64, data.test.size() / num_edges);
    fed.edge_test.push_back(
        matched_test_set(data.test, hist, test_size, gen));

    auto shards =
        deal_into_shards(data.train, std::move(idx), clients_per_edge);
    for (auto& s : shards) fed.client_train.push_back(std::move(s));
  }
  fed.validate();
  return fed;
}

FederatedDataset partition_by_group(const std::vector<Dataset>& groups,
                                    index_t clients_per_edge,
                                    scalar_t test_fraction,
                                    rng::Xoshiro256& gen) {
  HM_CHECK(!groups.empty() && clients_per_edge > 0);
  FederatedDataset fed;
  fed.clients_per_edge = clients_per_edge;
  for (index_t e = 0; e < static_cast<index_t>(groups.size()); ++e) {
    rng::Xoshiro256 edge_gen = gen.split(static_cast<std::uint64_t>(e));
    const TrainTest tt = split_train_test(
        groups[static_cast<std::size_t>(e)], test_fraction, edge_gen);
    std::vector<index_t> idx(static_cast<std::size_t>(tt.train.size()));
    std::iota(idx.begin(), idx.end(), index_t{0});
    rng::shuffle(idx, edge_gen);
    auto shards =
        deal_into_shards(tt.train, std::move(idx), clients_per_edge);
    for (auto& s : shards) fed.client_train.push_back(std::move(s));
    fed.edge_test.push_back(tt.test);
  }
  fed.validate();
  return fed;
}

}  // namespace hm::data
