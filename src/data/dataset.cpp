#include "data/dataset.hpp"

#include <algorithm>

#include "core/check.hpp"
#include "tensor/vecops.hpp"

namespace hm::data {

Dataset Dataset::subset(const std::vector<index_t>& idx) const {
  Dataset out;
  out.num_classes = num_classes;
  out.x.resize(static_cast<index_t>(idx.size()), dim());
  out.y.reserve(idx.size());
  for (index_t r = 0; r < static_cast<index_t>(idx.size()); ++r) {
    const index_t src = idx[static_cast<std::size_t>(r)];
    HM_CHECK_MSG(0 <= src && src < size(), "subset index " << src);
    tensor::copy(x.row(src), out.x.row(r));
    out.y.push_back(y[static_cast<std::size_t>(src)]);
  }
  return out;
}

void Dataset::append(const Dataset& other) {
  if (size() == 0 && dim() == 0) {
    *this = other;
    return;
  }
  HM_CHECK(other.dim() == dim());
  HM_CHECK(other.num_classes == num_classes);
  tensor::Matrix merged(size() + other.size(), dim());
  for (index_t r = 0; r < size(); ++r) tensor::copy(x.row(r), merged.row(r));
  for (index_t r = 0; r < other.size(); ++r) {
    tensor::copy(other.x.row(r), merged.row(size() + r));
  }
  x = std::move(merged);
  y.insert(y.end(), other.y.begin(), other.y.end());
}

void Dataset::validate() const {
  HM_CHECK_MSG(x.rows() == size(),
               "feature rows " << x.rows() << " != labels " << size());
  HM_CHECK(num_classes >= 2);
  for (const index_t label : y) {
    HM_CHECK_MSG(0 <= label && label < num_classes, "label " << label);
  }
}

TrainTest split_train_test(const Dataset& all, double test_fraction,
                           rng::Xoshiro256& gen) {
  HM_CHECK(0.0 < test_fraction && test_fraction < 1.0);
  std::vector<index_t> train_idx, test_idx;
  for (index_t i = 0; i < all.size(); ++i) {
    (gen.uniform() < test_fraction ? test_idx : train_idx).push_back(i);
  }
  return TrainTest{all.subset(train_idx), all.subset(test_idx)};
}

Dataset flip_labels(const Dataset& d) {
  Dataset out = d;
  for (auto& label : out.y) label = d.num_classes - 1 - label;
  return out;
}

std::vector<index_t> indices_of_class(const Dataset& d, index_t label) {
  std::vector<index_t> out;
  for (index_t i = 0; i < d.size(); ++i) {
    if (d.y[static_cast<std::size_t>(i)] == label) out.push_back(i);
  }
  return out;
}

std::vector<index_t> label_histogram(const Dataset& d) {
  std::vector<index_t> hist(static_cast<std::size_t>(d.num_classes), 0);
  for (const index_t label : d.y) ++hist[static_cast<std::size_t>(label)];
  return hist;
}

}  // namespace hm::data
