# Empty dependencies file for bench_fig4_nonconvex.
# This may be replaced when dependencies are built.
