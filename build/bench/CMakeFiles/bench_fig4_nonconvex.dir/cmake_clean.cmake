file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_nonconvex.dir/bench_common.cpp.o"
  "CMakeFiles/bench_fig4_nonconvex.dir/bench_common.cpp.o.d"
  "CMakeFiles/bench_fig4_nonconvex.dir/bench_fig4_nonconvex.cpp.o"
  "CMakeFiles/bench_fig4_nonconvex.dir/bench_fig4_nonconvex.cpp.o.d"
  "bench_fig4_nonconvex"
  "bench_fig4_nonconvex.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_nonconvex.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
