file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_tradeoff.dir/bench_common.cpp.o"
  "CMakeFiles/bench_table1_tradeoff.dir/bench_common.cpp.o.d"
  "CMakeFiles/bench_table1_tradeoff.dir/bench_table1_tradeoff.cpp.o"
  "CMakeFiles/bench_table1_tradeoff.dir/bench_table1_tradeoff.cpp.o.d"
  "bench_table1_tradeoff"
  "bench_table1_tradeoff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_tradeoff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
