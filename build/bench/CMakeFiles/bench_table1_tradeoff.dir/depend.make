# Empty dependencies file for bench_table1_tradeoff.
# This may be replaced when dependencies are built.
