# Empty dependencies file for bench_fig3_convex.
# This may be replaced when dependencies are built.
