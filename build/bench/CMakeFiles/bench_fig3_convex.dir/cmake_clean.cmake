file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_convex.dir/bench_common.cpp.o"
  "CMakeFiles/bench_fig3_convex.dir/bench_common.cpp.o.d"
  "CMakeFiles/bench_fig3_convex.dir/bench_fig3_convex.cpp.o"
  "CMakeFiles/bench_fig3_convex.dir/bench_fig3_convex.cpp.o.d"
  "bench_fig3_convex"
  "bench_fig3_convex.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_convex.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
