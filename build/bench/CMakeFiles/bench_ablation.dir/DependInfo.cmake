
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_ablation.cpp" "bench/CMakeFiles/bench_ablation.dir/bench_ablation.cpp.o" "gcc" "bench/CMakeFiles/bench_ablation.dir/bench_ablation.cpp.o.d"
  "/root/repo/bench/bench_common.cpp" "bench/CMakeFiles/bench_ablation.dir/bench_common.cpp.o" "gcc" "bench/CMakeFiles/bench_ablation.dir/bench_common.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/io/CMakeFiles/hm_io.dir/DependInfo.cmake"
  "/root/repo/build/src/algo/CMakeFiles/hm_algo.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/hm_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/hm_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/hm_data.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/hm_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/rng/CMakeFiles/hm_rng.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/hm_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/parallel/CMakeFiles/hm_parallel.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/hm_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
