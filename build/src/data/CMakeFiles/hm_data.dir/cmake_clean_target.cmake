file(REMOVE_RECURSE
  "libhm_data.a"
)
