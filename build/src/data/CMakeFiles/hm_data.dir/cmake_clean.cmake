file(REMOVE_RECURSE
  "CMakeFiles/hm_data.dir/csv.cpp.o"
  "CMakeFiles/hm_data.dir/csv.cpp.o.d"
  "CMakeFiles/hm_data.dir/dataset.cpp.o"
  "CMakeFiles/hm_data.dir/dataset.cpp.o.d"
  "CMakeFiles/hm_data.dir/federated.cpp.o"
  "CMakeFiles/hm_data.dir/federated.cpp.o.d"
  "CMakeFiles/hm_data.dir/generators.cpp.o"
  "CMakeFiles/hm_data.dir/generators.cpp.o.d"
  "libhm_data.a"
  "libhm_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hm_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
