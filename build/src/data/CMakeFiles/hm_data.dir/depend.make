# Empty dependencies file for hm_data.
# This may be replaced when dependencies are built.
