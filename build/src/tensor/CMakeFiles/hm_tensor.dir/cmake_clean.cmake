file(REMOVE_RECURSE
  "CMakeFiles/hm_tensor.dir/activations.cpp.o"
  "CMakeFiles/hm_tensor.dir/activations.cpp.o.d"
  "CMakeFiles/hm_tensor.dir/gemm.cpp.o"
  "CMakeFiles/hm_tensor.dir/gemm.cpp.o.d"
  "CMakeFiles/hm_tensor.dir/vecops.cpp.o"
  "CMakeFiles/hm_tensor.dir/vecops.cpp.o.d"
  "libhm_tensor.a"
  "libhm_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hm_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
