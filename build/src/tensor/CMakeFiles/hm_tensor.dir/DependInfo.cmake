
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tensor/activations.cpp" "src/tensor/CMakeFiles/hm_tensor.dir/activations.cpp.o" "gcc" "src/tensor/CMakeFiles/hm_tensor.dir/activations.cpp.o.d"
  "/root/repo/src/tensor/gemm.cpp" "src/tensor/CMakeFiles/hm_tensor.dir/gemm.cpp.o" "gcc" "src/tensor/CMakeFiles/hm_tensor.dir/gemm.cpp.o.d"
  "/root/repo/src/tensor/vecops.cpp" "src/tensor/CMakeFiles/hm_tensor.dir/vecops.cpp.o" "gcc" "src/tensor/CMakeFiles/hm_tensor.dir/vecops.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/hm_core.dir/DependInfo.cmake"
  "/root/repo/build/src/parallel/CMakeFiles/hm_parallel.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
