# Empty dependencies file for hm_tensor.
# This may be replaced when dependencies are built.
