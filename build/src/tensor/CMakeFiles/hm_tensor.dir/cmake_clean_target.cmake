file(REMOVE_RECURSE
  "libhm_tensor.a"
)
