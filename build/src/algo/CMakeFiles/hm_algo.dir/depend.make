# Empty dependencies file for hm_algo.
# This may be replaced when dependencies are built.
