
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/algo/centralized.cpp" "src/algo/CMakeFiles/hm_algo.dir/centralized.cpp.o" "gcc" "src/algo/CMakeFiles/hm_algo.dir/centralized.cpp.o.d"
  "/root/repo/src/algo/drfa.cpp" "src/algo/CMakeFiles/hm_algo.dir/drfa.cpp.o" "gcc" "src/algo/CMakeFiles/hm_algo.dir/drfa.cpp.o.d"
  "/root/repo/src/algo/duality_gap.cpp" "src/algo/CMakeFiles/hm_algo.dir/duality_gap.cpp.o" "gcc" "src/algo/CMakeFiles/hm_algo.dir/duality_gap.cpp.o.d"
  "/root/repo/src/algo/fedavg.cpp" "src/algo/CMakeFiles/hm_algo.dir/fedavg.cpp.o" "gcc" "src/algo/CMakeFiles/hm_algo.dir/fedavg.cpp.o.d"
  "/root/repo/src/algo/hierfavg.cpp" "src/algo/CMakeFiles/hm_algo.dir/hierfavg.cpp.o" "gcc" "src/algo/CMakeFiles/hm_algo.dir/hierfavg.cpp.o.d"
  "/root/repo/src/algo/hierminimax.cpp" "src/algo/CMakeFiles/hm_algo.dir/hierminimax.cpp.o" "gcc" "src/algo/CMakeFiles/hm_algo.dir/hierminimax.cpp.o.d"
  "/root/repo/src/algo/hierminimax_multi.cpp" "src/algo/CMakeFiles/hm_algo.dir/hierminimax_multi.cpp.o" "gcc" "src/algo/CMakeFiles/hm_algo.dir/hierminimax_multi.cpp.o.d"
  "/root/repo/src/algo/local_sgd.cpp" "src/algo/CMakeFiles/hm_algo.dir/local_sgd.cpp.o" "gcc" "src/algo/CMakeFiles/hm_algo.dir/local_sgd.cpp.o.d"
  "/root/repo/src/algo/projection.cpp" "src/algo/CMakeFiles/hm_algo.dir/projection.cpp.o" "gcc" "src/algo/CMakeFiles/hm_algo.dir/projection.cpp.o.d"
  "/root/repo/src/algo/qffl.cpp" "src/algo/CMakeFiles/hm_algo.dir/qffl.cpp.o" "gcc" "src/algo/CMakeFiles/hm_algo.dir/qffl.cpp.o.d"
  "/root/repo/src/algo/theory.cpp" "src/algo/CMakeFiles/hm_algo.dir/theory.cpp.o" "gcc" "src/algo/CMakeFiles/hm_algo.dir/theory.cpp.o.d"
  "/root/repo/src/algo/trainer_common.cpp" "src/algo/CMakeFiles/hm_algo.dir/trainer_common.cpp.o" "gcc" "src/algo/CMakeFiles/hm_algo.dir/trainer_common.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/hm_core.dir/DependInfo.cmake"
  "/root/repo/build/src/parallel/CMakeFiles/hm_parallel.dir/DependInfo.cmake"
  "/root/repo/build/src/rng/CMakeFiles/hm_rng.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/hm_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/hm_data.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/hm_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/hm_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/hm_metrics.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
