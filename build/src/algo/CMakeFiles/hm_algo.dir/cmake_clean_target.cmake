file(REMOVE_RECURSE
  "libhm_algo.a"
)
