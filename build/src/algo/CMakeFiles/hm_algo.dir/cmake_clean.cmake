file(REMOVE_RECURSE
  "CMakeFiles/hm_algo.dir/centralized.cpp.o"
  "CMakeFiles/hm_algo.dir/centralized.cpp.o.d"
  "CMakeFiles/hm_algo.dir/drfa.cpp.o"
  "CMakeFiles/hm_algo.dir/drfa.cpp.o.d"
  "CMakeFiles/hm_algo.dir/duality_gap.cpp.o"
  "CMakeFiles/hm_algo.dir/duality_gap.cpp.o.d"
  "CMakeFiles/hm_algo.dir/fedavg.cpp.o"
  "CMakeFiles/hm_algo.dir/fedavg.cpp.o.d"
  "CMakeFiles/hm_algo.dir/hierfavg.cpp.o"
  "CMakeFiles/hm_algo.dir/hierfavg.cpp.o.d"
  "CMakeFiles/hm_algo.dir/hierminimax.cpp.o"
  "CMakeFiles/hm_algo.dir/hierminimax.cpp.o.d"
  "CMakeFiles/hm_algo.dir/hierminimax_multi.cpp.o"
  "CMakeFiles/hm_algo.dir/hierminimax_multi.cpp.o.d"
  "CMakeFiles/hm_algo.dir/local_sgd.cpp.o"
  "CMakeFiles/hm_algo.dir/local_sgd.cpp.o.d"
  "CMakeFiles/hm_algo.dir/projection.cpp.o"
  "CMakeFiles/hm_algo.dir/projection.cpp.o.d"
  "CMakeFiles/hm_algo.dir/qffl.cpp.o"
  "CMakeFiles/hm_algo.dir/qffl.cpp.o.d"
  "CMakeFiles/hm_algo.dir/theory.cpp.o"
  "CMakeFiles/hm_algo.dir/theory.cpp.o.d"
  "CMakeFiles/hm_algo.dir/trainer_common.cpp.o"
  "CMakeFiles/hm_algo.dir/trainer_common.cpp.o.d"
  "libhm_algo.a"
  "libhm_algo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hm_algo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
