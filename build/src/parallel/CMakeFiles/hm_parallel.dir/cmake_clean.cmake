file(REMOVE_RECURSE
  "CMakeFiles/hm_parallel.dir/thread_pool.cpp.o"
  "CMakeFiles/hm_parallel.dir/thread_pool.cpp.o.d"
  "libhm_parallel.a"
  "libhm_parallel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hm_parallel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
