# Empty dependencies file for hm_parallel.
# This may be replaced when dependencies are built.
