file(REMOVE_RECURSE
  "libhm_parallel.a"
)
