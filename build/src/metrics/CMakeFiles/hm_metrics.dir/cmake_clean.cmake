file(REMOVE_RECURSE
  "CMakeFiles/hm_metrics.dir/evaluation.cpp.o"
  "CMakeFiles/hm_metrics.dir/evaluation.cpp.o.d"
  "CMakeFiles/hm_metrics.dir/history.cpp.o"
  "CMakeFiles/hm_metrics.dir/history.cpp.o.d"
  "libhm_metrics.a"
  "libhm_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hm_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
