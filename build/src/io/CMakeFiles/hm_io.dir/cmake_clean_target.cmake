file(REMOVE_RECURSE
  "libhm_io.a"
)
