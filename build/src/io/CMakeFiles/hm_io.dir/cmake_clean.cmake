file(REMOVE_RECURSE
  "CMakeFiles/hm_io.dir/checkpoint.cpp.o"
  "CMakeFiles/hm_io.dir/checkpoint.cpp.o.d"
  "libhm_io.a"
  "libhm_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hm_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
