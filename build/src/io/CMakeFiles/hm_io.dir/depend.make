# Empty dependencies file for hm_io.
# This may be replaced when dependencies are built.
