file(REMOVE_RECURSE
  "CMakeFiles/hm_sim.dir/latency.cpp.o"
  "CMakeFiles/hm_sim.dir/latency.cpp.o.d"
  "CMakeFiles/hm_sim.dir/quantize.cpp.o"
  "CMakeFiles/hm_sim.dir/quantize.cpp.o.d"
  "libhm_sim.a"
  "libhm_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hm_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
