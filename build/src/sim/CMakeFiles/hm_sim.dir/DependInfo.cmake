
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/latency.cpp" "src/sim/CMakeFiles/hm_sim.dir/latency.cpp.o" "gcc" "src/sim/CMakeFiles/hm_sim.dir/latency.cpp.o.d"
  "/root/repo/src/sim/quantize.cpp" "src/sim/CMakeFiles/hm_sim.dir/quantize.cpp.o" "gcc" "src/sim/CMakeFiles/hm_sim.dir/quantize.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/hm_core.dir/DependInfo.cmake"
  "/root/repo/build/src/parallel/CMakeFiles/hm_parallel.dir/DependInfo.cmake"
  "/root/repo/build/src/rng/CMakeFiles/hm_rng.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/hm_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
