# Empty compiler generated dependencies file for hm_rng.
# This may be replaced when dependencies are built.
