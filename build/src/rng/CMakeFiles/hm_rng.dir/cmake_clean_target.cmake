file(REMOVE_RECURSE
  "libhm_rng.a"
)
