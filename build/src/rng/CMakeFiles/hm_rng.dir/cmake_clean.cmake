file(REMOVE_RECURSE
  "CMakeFiles/hm_rng.dir/rng.cpp.o"
  "CMakeFiles/hm_rng.dir/rng.cpp.o.d"
  "CMakeFiles/hm_rng.dir/sampling.cpp.o"
  "CMakeFiles/hm_rng.dir/sampling.cpp.o.d"
  "libhm_rng.a"
  "libhm_rng.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hm_rng.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
