
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/convnet.cpp" "src/nn/CMakeFiles/hm_nn.dir/convnet.cpp.o" "gcc" "src/nn/CMakeFiles/hm_nn.dir/convnet.cpp.o.d"
  "/root/repo/src/nn/grad_check.cpp" "src/nn/CMakeFiles/hm_nn.dir/grad_check.cpp.o" "gcc" "src/nn/CMakeFiles/hm_nn.dir/grad_check.cpp.o.d"
  "/root/repo/src/nn/linear_regression.cpp" "src/nn/CMakeFiles/hm_nn.dir/linear_regression.cpp.o" "gcc" "src/nn/CMakeFiles/hm_nn.dir/linear_regression.cpp.o.d"
  "/root/repo/src/nn/mlp.cpp" "src/nn/CMakeFiles/hm_nn.dir/mlp.cpp.o" "gcc" "src/nn/CMakeFiles/hm_nn.dir/mlp.cpp.o.d"
  "/root/repo/src/nn/model.cpp" "src/nn/CMakeFiles/hm_nn.dir/model.cpp.o" "gcc" "src/nn/CMakeFiles/hm_nn.dir/model.cpp.o.d"
  "/root/repo/src/nn/softmax_regression.cpp" "src/nn/CMakeFiles/hm_nn.dir/softmax_regression.cpp.o" "gcc" "src/nn/CMakeFiles/hm_nn.dir/softmax_regression.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/hm_core.dir/DependInfo.cmake"
  "/root/repo/build/src/rng/CMakeFiles/hm_rng.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/hm_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/hm_data.dir/DependInfo.cmake"
  "/root/repo/build/src/parallel/CMakeFiles/hm_parallel.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
