# Empty dependencies file for hm_nn.
# This may be replaced when dependencies are built.
