file(REMOVE_RECURSE
  "CMakeFiles/hm_nn.dir/convnet.cpp.o"
  "CMakeFiles/hm_nn.dir/convnet.cpp.o.d"
  "CMakeFiles/hm_nn.dir/grad_check.cpp.o"
  "CMakeFiles/hm_nn.dir/grad_check.cpp.o.d"
  "CMakeFiles/hm_nn.dir/linear_regression.cpp.o"
  "CMakeFiles/hm_nn.dir/linear_regression.cpp.o.d"
  "CMakeFiles/hm_nn.dir/mlp.cpp.o"
  "CMakeFiles/hm_nn.dir/mlp.cpp.o.d"
  "CMakeFiles/hm_nn.dir/model.cpp.o"
  "CMakeFiles/hm_nn.dir/model.cpp.o.d"
  "CMakeFiles/hm_nn.dir/softmax_regression.cpp.o"
  "CMakeFiles/hm_nn.dir/softmax_regression.cpp.o.d"
  "libhm_nn.a"
  "libhm_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hm_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
