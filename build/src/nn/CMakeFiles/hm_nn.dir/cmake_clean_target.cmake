file(REMOVE_RECURSE
  "libhm_nn.a"
)
