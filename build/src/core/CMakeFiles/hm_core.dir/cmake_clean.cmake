file(REMOVE_RECURSE
  "CMakeFiles/hm_core.dir/flags.cpp.o"
  "CMakeFiles/hm_core.dir/flags.cpp.o.d"
  "CMakeFiles/hm_core.dir/log.cpp.o"
  "CMakeFiles/hm_core.dir/log.cpp.o.d"
  "libhm_core.a"
  "libhm_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hm_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
