# Empty dependencies file for comm_tradeoff.
# This may be replaced when dependencies are built.
