file(REMOVE_RECURSE
  "CMakeFiles/comm_tradeoff.dir/comm_tradeoff.cpp.o"
  "CMakeFiles/comm_tradeoff.dir/comm_tradeoff.cpp.o.d"
  "comm_tradeoff"
  "comm_tradeoff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/comm_tradeoff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
