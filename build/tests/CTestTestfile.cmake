# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_parallel[1]_include.cmake")
include("/root/repo/build/tests/test_rng[1]_include.cmake")
include("/root/repo/build/tests/test_tensor[1]_include.cmake")
include("/root/repo/build/tests/test_data[1]_include.cmake")
include("/root/repo/build/tests/test_nn[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_metrics[1]_include.cmake")
include("/root/repo/build/tests/test_projection[1]_include.cmake")
include("/root/repo/build/tests/test_algo[1]_include.cmake")
include("/root/repo/build/tests/test_hierminimax[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_theory[1]_include.cmake")
include("/root/repo/build/tests/test_extensions[1]_include.cmake")
include("/root/repo/build/tests/test_centralized[1]_include.cmake")
