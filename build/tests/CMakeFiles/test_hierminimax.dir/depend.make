# Empty dependencies file for test_hierminimax.
# This may be replaced when dependencies are built.
