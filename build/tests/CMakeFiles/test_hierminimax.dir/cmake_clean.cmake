file(REMOVE_RECURSE
  "CMakeFiles/test_hierminimax.dir/test_hierminimax.cpp.o"
  "CMakeFiles/test_hierminimax.dir/test_hierminimax.cpp.o.d"
  "test_hierminimax"
  "test_hierminimax.pdb"
  "test_hierminimax[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hierminimax.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
